//! **Algorithm 1** of the paper: the `O(N1·N2·R)` lattice recursion on the
//! normalised constant `Q(N) = G(N)/(N1!·N2!)` (paper eq. 8–10), with the
//! auxiliary `V`-recursion (eq. 9) folding the geometric tail of each bursty
//! class into constant work per lattice point.
//!
//! Sweeping the lattice row-major and applying the `i = 1` recurrence (and
//! the `i = 2` recurrence along the `n1 = 0` column):
//!
//! ```text
//! Q(n1, n2) = [ Q(n1−1, n2)
//!             + Σ_{r∈R1} a_r·ρ_r·Q(n1−a_r, n2−a_r)
//!             + Σ_{r∈R2} a_r·ρ_r·V_r(n1, n2) ] / n1
//! V_r(n1, n2) = Q(n1−a_r, n2−a_r) + (β_r/μ_r)·V_r(n1−a_r, n2−a_r)
//! ```
//!
//! with `Q(0,0) = 1` and `Q ≡ 0` at any negative coordinate.
//!
//! # Numeric backends
//!
//! `Q(n1, n2) ≈ G/(n1!·n2!)` underflows `f64` well before the paper's
//! largest evaluation size even though all the performance measures —
//! ratios of nearby `Q` values — are perfectly tame. Three backends are
//! provided:
//!
//! * [`QLattice<f64>`] — plain doubles; fastest; valid while no cell
//!   underflows. The solver's `Auto` mode uses it in the paper's
//!   "Algorithm 1 for `N ≤ 32`" regime.
//! * [`QLattice<ExtFloat>`] — extended-range floats; works at any size the
//!   lattice fits in memory; the reference fast backend.
//! * [`ScaledQLattice`] — the paper's §6 *dynamic scaling*, realised as a
//!   deterministic geometric schedule `Q̂(n) = Q(n)·c^(n1+n2)` with
//!   `ln c = ln(max(N1,N2)) − 1`. A single *reactive* scalar `ω` (scaling
//!   every stored cell when one nears underflow, as §6 literally suggests)
//!   cannot work at `N = 256`: the spread between `Q(0,0) = 1` and
//!   `Q(256,256) ≈ 10^-1014` exceeds the `f64` exponent range on its own.
//!   The geometric schedule keeps the whole lattice in range for every size
//!   the paper evaluates (by Stirling, the residual
//!   `ln Q̂ ≈ −2·n·(ln n − ln N_max)` peaks near `2N/e`, about `e^±190` at
//!   `N = 256`), at the cost of one extra multiply per term — the
//!   "constant factor" §6 mentions. Ratios of `Q̂` cells recover ratios of
//!   `Q` exactly, so the measures are unaffected, which is §6's point.

use xbar_numeric::ExtFloat;

use crate::model::{Dims, Model};

/// Scalar arithmetic needed by the `Q`-recursion.
pub trait QScalar: Copy {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + other`.
    fn add(self, other: Self) -> Self;
    /// `self · x` for an `f64` coefficient.
    fn scale(self, x: f64) -> Self;
    /// `self / den` as an `f64` (the form every measure takes).
    fn ratio_to(self, den: Self) -> f64;
    /// `true` iff the value is exactly zero (used by health checks).
    fn is_zero(self) -> bool;
}

impl QScalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn scale(self, x: f64) -> Self {
        self * x
    }
    fn ratio_to(self, den: Self) -> f64 {
        self / den
    }
    fn is_zero(self) -> bool {
        self == 0.0
    }
}

impl QScalar for ExtFloat {
    fn zero() -> Self {
        ExtFloat::ZERO
    }
    fn one() -> Self {
        ExtFloat::ONE
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn scale(self, x: f64) -> Self {
        self * x
    }
    fn ratio_to(self, den: Self) -> f64 {
        self.ratio(den)
    }
    fn is_zero(self) -> bool {
        ExtFloat::is_zero(self)
    }
}

/// Access to ratios `Q(num)/Q(den)` of normalisation constants — the
/// interface through which every performance measure reads a solved lattice
/// (Algorithm 1 in any backend, or Algorithm 2's ratio form).
pub trait QRatio {
    /// The largest dims this lattice was solved for.
    fn dims(&self) -> Dims;

    /// `Q(num)/Q(den)`. A negative coordinate in `num` means `Q(num) = 0`
    /// so the ratio is 0. `den` must be a valid lattice point.
    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64;
}

/// Solved `Q` lattice over `[0..=N1] × [0..=N2]` in scalar type `S`.
#[derive(Clone, Debug)]
pub struct QLattice<S> {
    dims: Dims,
    /// Row-major `(N1+1) × (N2+1)`.
    q: Vec<S>,
}

impl<S: QScalar> QLattice<S> {
    /// Run Algorithm 1 for `model`.
    pub fn solve(model: &Model) -> Self {
        let dims = model.dims();
        let (n1, n2) = (dims.n1 as usize, dims.n2 as usize);
        let cols = n2 + 1;
        let classes = model.workload().classes();

        struct PoissonTerm {
            a: i64,
            a_rho: f64,
        }
        struct BurstyTerm {
            a: i64,
            a_rho: f64,
            beta_over_mu: f64,
        }
        let mut poisson = Vec::new();
        let mut bursty = Vec::new();
        for c in classes {
            let a = c.bandwidth as i64;
            let a_rho = a as f64 * c.rho();
            if c.is_poisson() {
                poisson.push(PoissonTerm { a, a_rho });
            } else {
                bursty.push(BurstyTerm {
                    a,
                    a_rho,
                    beta_over_mu: c.beta / c.mu,
                });
            }
        }

        let mut q = vec![S::zero(); (n1 + 1) * cols];
        // One V lattice per bursty class.
        let mut v: Vec<Vec<S>> = vec![vec![S::zero(); (n1 + 1) * cols]; bursty.len()];

        let at = |i1: i64, i2: i64| -> usize { i1 as usize * cols + i2 as usize };
        let get = |buf: &[S], i1: i64, i2: i64| -> S {
            if i1 < 0 || i2 < 0 {
                S::zero()
            } else {
                buf[i1 as usize * cols + i2 as usize]
            }
        };

        q[0] = S::one();
        for i1 in 0..=n1 as i64 {
            for i2 in 0..=n2 as i64 {
                // V_r(i1, i2) first — it only reads strictly smaller points.
                for (j, b) in bursty.iter().enumerate() {
                    let val = get(&q, i1 - b.a, i2 - b.a)
                        .add(get(&v[j], i1 - b.a, i2 - b.a).scale(b.beta_over_mu));
                    v[j][at(i1, i2)] = val;
                }
                if i1 == 0 && i2 == 0 {
                    continue;
                }
                // The i = 1 recurrence when possible, i = 2 on the n1 = 0
                // column (both derive from paper eq. 8; a consistency test
                // below checks they agree).
                let (prev, divisor) = if i1 >= 1 {
                    (get(&q, i1 - 1, i2), i1 as f64)
                } else {
                    (get(&q, i1, i2 - 1), i2 as f64)
                };
                let mut acc = prev;
                for p in &poisson {
                    acc = acc.add(get(&q, i1 - p.a, i2 - p.a).scale(p.a_rho));
                }
                for (j, b) in bursty.iter().enumerate() {
                    acc = acc.add(v[j][at(i1, i2)].scale(b.a_rho));
                }
                q[at(i1, i2)] = acc.scale(1.0 / divisor);
            }
        }

        QLattice { dims, q }
    }

    /// Raw `Q(i1, i2)` (zero outside the non-negative quadrant).
    pub fn q(&self, i1: i64, i2: i64) -> S {
        if i1 < 0 || i2 < 0 {
            S::zero()
        } else {
            assert!(
                i1 <= self.dims.n1 as i64 && i2 <= self.dims.n2 as i64,
                "Q({i1},{i2}) outside solved lattice {}",
                self.dims
            );
            self.q[i1 as usize * (self.dims.n2 as usize + 1) + i2 as usize]
        }
    }

    /// `true` iff every lattice cell is a usable (nonzero) value — the
    /// plain-`f64` backend loses cells to underflow on large switches, and
    /// the solver uses this to detect that.
    pub fn is_healthy(&self) -> bool {
        !self.q.iter().any(|x| x.is_zero())
    }
}

impl<S: QScalar> QRatio for QLattice<S> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        self.q(num.0, num.1).ratio_to(self.q(den.0, den.1))
    }
}

/// Algorithm 1 under the paper's §6 dynamic scaling, realised as the
/// deterministic geometric schedule described in the module docs:
/// each stored cell is `Q̂(n) = Q(n)·c^(n1+n2)`.
///
/// Scaled recurrence (`ĉ2a = c^{2a_r}`):
///
/// ```text
/// V̂_r(n)  = ĉ2a·( Q̂(n−a_rI) + (β_r/μ_r)·V̂_r(n−a_rI) )
/// Q̂(n)    = [ c·Q̂(n−1_1) + Σ_{R1} a_r·ρ_r·ĉ2a·Q̂(n−a_rI)
///                          + Σ_{R2} a_r·ρ_r·V̂_r(n) ] / n1
/// ```
#[derive(Clone, Debug)]
pub struct ScaledQLattice {
    dims: Dims,
    /// `ln c` — the per-coordinate scaling exponent.
    ln_c: f64,
    qhat: Vec<f64>,
}

impl ScaledQLattice {
    /// Run Algorithm 1 with scaling for `model`.
    pub fn solve(model: &Model) -> Self {
        let dims = model.dims();
        let (n1, n2) = (dims.n1 as usize, dims.n2 as usize);
        let cols = n2 + 1;
        // ln c = ln(Nmax) − 1 flattens the factorial decay (Stirling);
        // clamp at 0 so tiny switches are simply unscaled.
        let ln_c = ((dims.max_n() as f64).ln() - 1.0).max(0.0);
        let c = ln_c.exp();

        struct Term {
            a: i64,
            a_rho: f64,
            c2a: f64,
            beta_over_mu: f64,
            poisson: bool,
        }
        let terms: Vec<Term> = model
            .workload()
            .classes()
            .iter()
            .map(|cl| {
                let a = cl.bandwidth as i64;
                Term {
                    a,
                    a_rho: a as f64 * cl.rho(),
                    c2a: (2.0 * a as f64 * ln_c).exp(),
                    beta_over_mu: cl.beta / cl.mu,
                    poisson: cl.is_poisson(),
                }
            })
            .collect();
        let n_bursty = terms.iter().filter(|t| !t.poisson).count();

        let mut qhat = vec![0.0f64; (n1 + 1) * cols];
        let mut v: Vec<Vec<f64>> = vec![vec![0.0; (n1 + 1) * cols]; n_bursty];
        let at = |i1: i64, i2: i64| -> usize { i1 as usize * cols + i2 as usize };
        let get = |buf: &[f64], i1: i64, i2: i64| -> f64 {
            if i1 < 0 || i2 < 0 {
                0.0
            } else {
                buf[i1 as usize * cols + i2 as usize]
            }
        };

        qhat[0] = 1.0;
        for i1 in 0..=n1 as i64 {
            for i2 in 0..=n2 as i64 {
                for (j, t) in terms.iter().filter(|t| !t.poisson).enumerate() {
                    v[j][at(i1, i2)] = t.c2a
                        * (get(&qhat, i1 - t.a, i2 - t.a)
                            + t.beta_over_mu * get(&v[j], i1 - t.a, i2 - t.a));
                }
                if i1 == 0 && i2 == 0 {
                    continue;
                }
                let (prev, divisor) = if i1 >= 1 {
                    (get(&qhat, i1 - 1, i2) * c, i1 as f64)
                } else {
                    (get(&qhat, i1, i2 - 1) * c, i2 as f64)
                };
                let mut acc = prev;
                let mut j = 0usize;
                for t in &terms {
                    if t.poisson {
                        acc += t.a_rho * t.c2a * get(&qhat, i1 - t.a, i2 - t.a);
                    } else {
                        acc += t.a_rho * v[j][at(i1, i2)];
                        j += 1;
                    }
                }
                qhat[at(i1, i2)] = acc / divisor;
            }
        }

        ScaledQLattice { dims, ln_c, qhat }
    }

    /// The scaling exponent `ln c` in use (diagnostic).
    pub fn ln_scale(&self) -> f64 {
        self.ln_c
    }

    fn qhat(&self, i1: i64, i2: i64) -> f64 {
        if i1 < 0 || i2 < 0 {
            0.0
        } else {
            assert!(
                i1 <= self.dims.n1 as i64 && i2 <= self.dims.n2 as i64,
                "Q({i1},{i2}) outside solved lattice {}",
                self.dims
            );
            self.qhat[i1 as usize * (self.dims.n2 as usize + 1) + i2 as usize]
        }
    }

    /// `true` iff no cell under- or overflowed.
    pub fn is_healthy(&self) -> bool {
        self.qhat.iter().all(|x| x.is_finite() && *x > 0.0)
    }
}

impl QRatio for ScaledQLattice {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        // Q(num)/Q(den) = Q̂(num)/Q̂(den) · c^{(den1+den2) − (num1+num2)}.
        let shift = (den.0 + den.1 - num.0 - num.1) as f64;
        self.qhat(num.0, num.1) / self.qhat(den.0, den.1) * (shift * self.ln_c).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::Brute;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn mixed_model(n1: u32, n2: u32) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0))
            .with(TrafficClass::poisson(0.15).with_bandwidth(2))
            .with(TrafficClass::bpp(0.1, 0.05, 2.0).with_bandwidth(2));
        Model::new(Dims::new(n1, n2), w).unwrap()
    }

    #[test]
    fn lattice_matches_brute_force_q_everywhere() {
        let m = mixed_model(6, 5);
        let lat: QLattice<f64> = QLattice::solve(&m);
        let brute = Brute::new(&m);
        for i1 in 0..=6i64 {
            for i2 in 0..=5i64 {
                let expect = brute.q(Dims::new(i1 as u32, i2 as u32)).to_f64();
                close(lat.q(i1, i2), expect, 1e-11);
            }
        }
    }

    #[test]
    fn extfloat_backend_matches_f64_backend() {
        let m = mixed_model(7, 7);
        let a: QLattice<f64> = QLattice::solve(&m);
        let b: QLattice<ExtFloat> = QLattice::solve(&m);
        for i1 in 0..=7i64 {
            for i2 in 0..=7i64 {
                close(a.q(i1, i2), b.q(i1, i2).to_f64(), 1e-12);
            }
        }
    }

    #[test]
    fn scaled_backend_ratios_match_f64_backend() {
        let m = mixed_model(8, 6);
        let plain: QLattice<f64> = QLattice::solve(&m);
        let scaled = ScaledQLattice::solve(&m);
        assert!(scaled.is_healthy());
        let den = (8i64, 6i64);
        for i1 in 0..=8i64 {
            for i2 in 0..=6i64 {
                close(
                    scaled.q_ratio((i1, i2), den),
                    plain.q_ratio((i1, i2), den),
                    1e-9,
                );
            }
        }
    }

    #[test]
    fn f64_backend_underflows_large_switch_but_ext_survives() {
        let w = Workload::new().with(TrafficClass::poisson(0.0012 / 128.0));
        let m = Model::new(Dims::square(128), w).unwrap();
        let plain: QLattice<f64> = QLattice::solve(&m);
        assert!(!plain.is_healthy(), "expected f64 underflow at N=128");
        let ext: QLattice<ExtFloat> = QLattice::solve(&m);
        assert!(ext.is_healthy());
        // Q(127,127)/Q(128,128) is huge but finite.
        let r = ext.q_ratio((127, 127), (128, 128));
        assert!(r.is_finite() && r > 1.0);
    }

    #[test]
    fn scaled_backend_survives_n256() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / 256.0))
            .with(TrafficClass::bpp(0.0012 / 256.0, 0.0012 / 256.0, 1.0));
        let m = Model::new(Dims::square(256), w).unwrap();
        let scaled = ScaledQLattice::solve(&m);
        assert!(scaled.is_healthy(), "scaled backend lost cells at N=256");
        let ext: QLattice<ExtFloat> = QLattice::solve(&m);
        let den = (256i64, 256i64);
        // (Ratios to far-away cells like Q(0,0)/Q(256,256) ≈ e^2335 exceed
        // f64 as plain numbers; the measures only ever need nearby cells.)
        for &p in &[(255i64, 255i64), (250, 250), (200, 256), (240, 240)] {
            close(scaled.q_ratio(p, den), ext.q_ratio(p, den), 1e-6);
        }
    }

    #[test]
    fn q_ratio_zero_for_negative_numerator() {
        let m = mixed_model(4, 4);
        let lat: QLattice<f64> = QLattice::solve(&m);
        assert_eq!(lat.q_ratio((-1, 2), (4, 4)), 0.0);
        assert_eq!(lat.q_ratio((2, -2), (4, 4)), 0.0);
    }

    #[test]
    fn boundary_rows_are_inverse_factorials() {
        // Q(0, n) = Q(n, 0) = 1/n! (only the empty state fits) —
        // exercises the i = 2 branch against the i = 1 branch.
        let m = mixed_model(5, 5);
        let lat: QLattice<f64> = QLattice::solve(&m);
        let mut fact = 1.0;
        for n in 0..=5i64 {
            if n > 0 {
                fact *= n as f64;
            }
            close(lat.q(0, n), 1.0 / fact, 1e-13);
            close(lat.q(n, 0), 1.0 / fact, 1e-13);
        }
    }

    #[test]
    fn transpose_symmetry() {
        // Q is symmetric under swapping (N1, N2) when the workload is held
        // in per-set parameters: G(N1,N2) = G(N2,N1) by symmetry of Ψ.
        let m = mixed_model(6, 4);
        let mt = mixed_model(4, 6);
        let a: QLattice<f64> = QLattice::solve(&m);
        let b: QLattice<f64> = QLattice::solve(&mt);
        for i1 in 0..=6i64 {
            for i2 in 0..=4i64 {
                close(a.q(i1, i2), b.q(i2, i1), 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside solved lattice")]
    fn out_of_range_access_panics() {
        let m = mixed_model(3, 3);
        let lat: QLattice<f64> = QLattice::solve(&m);
        let _ = lat.q(4, 0);
    }
}

//! Incremental sweep solver: per-class leave-one-out partial convolutions.
//!
//! Every numerical study in the paper (Figures 1–4, Tables 1–2, the
//! hotspot and rectangular sweeps) varies **one class's** BPP parameters
//! (`α_r`, `β_r`) or its rate `a_r` across dozens of points, yet a fresh
//! [`solve`](crate::solve) pays the full `O(N1·N2·R)` Algorithm-1
//! recursion at every point. The product form factors per class,
//!
//! ```text
//! G = Ψ ⊛ Φ_1 ⊛ … ⊛ Φ_R,
//! ```
//!
//! so the normalised lattice obeys the classic *class-deletion* identity
//! of convolution algorithms for product-form loss networks:
//!
//! ```text
//! Q_{S ∪ {r}}(n1, n2) = Σ_{j ≥ 0} Φ_r(j) · Q_S(n1 − j·a_r, n2 − j·a_r),
//! Φ_r(j) = Π_{l=1..j} (ρ_r + y_r·(l−1)) / l,     y_r = β_r / μ_r,
//! ```
//!
//! where `Q_S` is the normalised lattice with only the classes in `S`
//! installed. [`SweepSolver`] precomputes the leave-one-out partials
//! `Q_{-r}` once per base model and answers `solve_with_class(r, class)`
//! with a single recombination.
//!
//! # The diagonal ray
//!
//! Every switch measure in [`crate::measures`] — blocking, the `E_r`
//! concurrency chain, shadow costs, the closed-form revenue gradient —
//! reads `Q` only on the main diagonal ray `(N1 − d, N2 − d)`,
//! `d = 0..=min(N1, N2)` (targets shrink by `a·I` steps from the full
//! dims). The ray is *closed* under the class-deletion convolution, so
//! the solver stores `O(min N)` values per class instead of `O(N1·N2)`
//! and a recombination costs `O(C²/a_r)` multiply-adds — this is what
//! buys the large per-point speedup over a fresh lattice solve.
//!
//! Two numeric backends mirror Algorithm 1's: scaled `f64` (the §6
//! geometric schedule, same `ln c` as `ScaledQLattice`) and
//! [`ExtFloat`]. `Algorithm::Auto` picks scaled for small switches and
//! escalates to extended-range if the scaled rays leave their operating
//! envelope.
//!
//! The same partials yield the §4 sensitivity gradients **exactly**:
//! differentiating `Φ_r` term-by-term gives `∂Q/∂ρ_s` and `∂Q/∂y_s`
//! rays, and the blocking/concurrency/revenue gradients follow from the
//! chain rule through the `E_r` recursion — no finite differences and no
//! extra solves (see [`SweepSolver::gradients`]).

use xbar_numeric::{permutation, ExtFloat};
use xbar_traffic::{TrafficClass, Workload};

use crate::alg1::QRatio;
use crate::measures::{
    measures, measures_at, revenue_gradient_rho_closed, shadow_cost, SwitchMeasures,
};
use crate::model::{Dims, Model};
use crate::solver::{Algorithm, SolveError, AUTO_F64_MAX_N};

/// Scalar abstraction for ray storage: plain (scaled) `f64` or
/// extended-range. Mirrors `alg1::QScalar`, plus the constructors the
/// ray builder needs.
pub(crate) trait RayScalar: Copy + Send + Sync {
    fn zero() -> Self;
    fn add(self, other: Self) -> Self;
    fn mul(self, other: Self) -> Self;
    fn scale(self, k: f64) -> Self;
    /// `self / other` as an `f64` (assumes the pair is in range).
    fn ratio_to(self, other: Self) -> f64;
    /// `e^x` as a scalar.
    fn from_ln(x: f64) -> Self;
    /// In-range check: scaled `f64` must stay finite and positive;
    /// extended-range is always healthy.
    fn healthy(self) -> bool;

    /// The recombination primitive shared by [`install_class`] and
    /// [`derivative_ray`]:
    /// `out[d] = (seed_base ? base[d] : 0) + Σ_{j≥1} coef[j]·base[d+j·a]`,
    /// truncated at the ray end. The default is the reference scalar
    /// loop; `f64` overrides it with the runtime-dispatched multi-lane
    /// kernels in [`crate::simd`].
    fn combine(base: &[Self], coef: &[Self], a: usize, seed_base: bool) -> Vec<Self> {
        let len = base.len();
        let mut out = Vec::with_capacity(len);
        for d in 0..len {
            let mut acc = if seed_base { base[d] } else { Self::zero() };
            let mut j = 1;
            let mut idx = d + a;
            while idx < len {
                acc = acc.add(coef[j].mul(base[idx]));
                j += 1;
                idx += a;
            }
            out.push(acc);
        }
        out
    }
}

impl RayScalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn mul(self, other: Self) -> Self {
        self * other
    }
    fn scale(self, k: f64) -> Self {
        self * k
    }
    fn ratio_to(self, other: Self) -> f64 {
        self / other
    }
    fn from_ln(x: f64) -> Self {
        x.exp()
    }
    fn healthy(self) -> bool {
        self.is_finite() && self > 0.0
    }
    fn combine(base: &[f64], coef: &[f64], a: usize, seed_base: bool) -> Vec<f64> {
        crate::simd::combine(base, coef, a, seed_base)
    }
}

impl RayScalar for ExtFloat {
    fn zero() -> Self {
        ExtFloat::ZERO
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn mul(self, other: Self) -> Self {
        self * other
    }
    fn scale(self, k: f64) -> Self {
        self * k
    }
    fn ratio_to(self, other: Self) -> f64 {
        self.ratio(other)
    }
    fn from_ln(x: f64) -> Self {
        ExtFloat::exp(x)
    }
    fn healthy(self) -> bool {
        true
    }
}

/// The normalised lattice restricted to the main diagonal ray
/// `(N1 − d, N2 − d)`, `d = 0..=C`, `C = min(N1, N2)`.
///
/// Stored values carry the same geometric scale as `ScaledQLattice`:
/// `vals[d] = Q(N1−d, N2−d) · c^{(N1−d) + (N2−d)}` with
/// `ln c = max(ln(max N) − 1, 0)` (identically zero scale for the
/// extended-range backend). Ratios between ray points therefore need a
/// `c^{2(d_num − d_den)}` correction, applied in [`QRatio::q_ratio`].
#[derive(Clone, Debug)]
pub(crate) struct Ray<S> {
    pub(crate) dims: Dims,
    pub(crate) ln_c: f64,
    pub(crate) vals: Vec<S>,
}

impl<S: RayScalar> Ray<S> {
    /// Ray index of the lattice point `p`, panicking (like
    /// `QLattice::q`) if `p` is off the ray or outside the dims.
    fn d_of(&self, p: (i64, i64)) -> usize {
        let d = self.dims.n1 as i64 - p.0;
        let on_ray = d >= 0 && d < self.vals.len() as i64 && self.dims.n2 as i64 - d == p.1;
        assert!(
            on_ray,
            "Q({}, {}) outside the solved diagonal ray of {}",
            p.0, p.1, self.dims
        );
        d as usize
    }

    /// `Q(ray num) / Q(ray den)` with the scale shift undone.
    fn index_ratio(&self, num: usize, den: usize) -> f64 {
        let shift = 2.0 * (num as f64 - den as f64) * self.ln_c;
        self.vals[num].ratio_to(self.vals[den]) * shift.exp()
    }

    fn is_healthy(&self) -> bool {
        self.vals.iter().all(|v| v.healthy())
    }
}

impl<S: RayScalar> QRatio for Ray<S> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        self.index_ratio(self.d_of(num), self.d_of(den))
    }
}

/// Scaled `Φ_r(j)` series for one class: `phi[j] = Φ_r(j) · c^{2·j·a_r}`
/// up to the last multiple of `a_r` that fits on a ray of length `len`.
///
/// `Φ_r(0) = 1`, `Φ_r(j) = Φ_r(j−1) · (ρ_r + y_r·(j−1)) / j`. The
/// `λ_r(k) = α_r + β_r·k` factors are *not* clamped at zero — Algorithm 1
/// analytically continues Bernoulli classes the same way, and for a valid
/// model `j − 1 < max N ≤ S` keeps every factor non-negative in range.
fn phi_series<S: RayScalar>(len: usize, a: usize, rho: f64, y: f64, ln_c: f64) -> Vec<S> {
    let jmax = (len - 1) / a;
    let factor = (2.0 * a as f64 * ln_c).exp();
    let mut phi = Vec::with_capacity(jmax + 1);
    let mut cur = S::from_ln(0.0);
    phi.push(cur);
    for j in 1..=jmax {
        let jf = j as f64;
        cur = cur.scale(factor * (rho + y * (jf - 1.0)) / jf);
        phi.push(cur);
    }
    phi
}

/// Install class `(a, rho, y)` on top of the partial ray `base`:
/// `out[d] = Σ_{j ≥ 0} phi[j] · base[d + j·a]` (deeper ray points are
/// *smaller* switches; indices past the ray end are outside the
/// sub-switch and contribute zero — exact truncation, not an
/// approximation).
pub(crate) fn install_class<S: RayScalar>(
    base: &[S],
    a: usize,
    rho: f64,
    y: f64,
    ln_c: f64,
) -> Vec<S> {
    let phi = phi_series::<S>(base.len(), a, rho, y, ln_c);
    S::combine(base, &phi, a, true)
}

fn install_all<S: RayScalar>(mut ray: Vec<S>, classes: &[TrafficClass], ln_c: f64) -> Vec<S> {
    for c in classes {
        ray = install_class(&ray, c.bandwidth as usize, c.rho(), c.beta / c.mu, ln_c);
    }
    ray
}

/// The empty-workload ray: `Q_∅(n1, n2) = 1/(n1!·n2!)`, at scale
/// `c^{n1+n2}`.
fn empty_ray<S: RayScalar>(dims: Dims, ln_c: f64) -> Vec<S> {
    let c = dims.min_n() as usize;
    (0..=c)
        .map(|d| {
            let n1 = (dims.n1 as usize - d) as u64;
            let n2 = (dims.n2 as usize - d) as u64;
            let sum = (n1 + n2) as f64;
            S::from_ln(sum * ln_c - xbar_numeric::ln_factorial(n1) - xbar_numeric::ln_factorial(n2))
        })
        .collect()
}

/// Leave-one-out rays for every class plus the full ray, via the
/// prefix/suffix trick: `pre[i] = Q_{classes[..i]}`, then
/// `loo[r] = fold(pre[r], classes[r+1..])`. `O(R²·C²)` total work, paid
/// once per base model.
fn build_rays<S: RayScalar>(model: &Model, ln_c: f64) -> (Vec<Vec<S>>, Vec<S>) {
    let classes = model.workload().classes();
    let mut pre: Vec<S> = empty_ray(model.dims(), ln_c);
    let mut loo = Vec::with_capacity(classes.len());
    for r in 0..classes.len() {
        loo.push(install_all(pre.clone(), &classes[r + 1..], ln_c));
        pre = install_all(pre, &classes[r..r + 1], ln_c);
    }
    (loo, pre)
}

pub(crate) enum Repr {
    Scaled {
        full: Ray<f64>,
        loo: Vec<Vec<f64>>,
    },
    Ext {
        full: Ray<ExtFloat>,
        loo: Vec<Vec<ExtFloat>>,
    },
}

/// Precomputed per-class partial convolutions for incremental parameter
/// sweeps over one class at a time.
///
/// ```
/// use xbar_core::{Algorithm, Dims, Model, SweepSolver};
/// use xbar_traffic::{TrafficClass, Workload};
///
/// let w = Workload::new()
///     .with(TrafficClass::poisson(0.2))
///     .with(TrafficClass::bpp(0.1, 0.05, 1.0));
/// let model = Model::new(Dims::square(16), w).unwrap();
/// let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
/// for i in 0..10 {
///     let rho = 0.05 + 0.05 * i as f64;
///     let point = sweep.solve_with_rho(1, rho).unwrap();
///     assert!(point.blocking(1) >= 0.0);
/// }
/// ```
pub struct SweepSolver {
    base: Model,
    algorithm: Algorithm,
    repr: Repr,
}

impl SweepSolver {
    /// Precompute the leave-one-out partial rays for `model`.
    ///
    /// Backend policy mirrors [`solve`](crate::solve): `Alg1F64` and
    /// `Alg1Scaled` use the scaled-`f64` rays (failing with
    /// [`SolveError::Underflow`] if they leave the operating envelope),
    /// everything else uses extended range; `Auto` picks scaled for
    /// `max N ≤ 64` and silently escalates to extended range when the
    /// scaled rays are unhealthy (counted as `sweep.escalate`).
    pub fn new(model: &Model, algorithm: Algorithm) -> Result<Self, SolveError> {
        let scaled_first = match algorithm {
            Algorithm::Alg1F64 | Algorithm::Alg1Scaled => true,
            Algorithm::Auto => model.dims().max_n() <= AUTO_F64_MAX_N,
            _ => false,
        };
        xbar_obs::time("sweep.precompute", || {
            if scaled_first {
                let ln_c = ((model.dims().max_n() as f64).ln() - 1.0).max(0.0);
                let (loo, full) = build_rays::<f64>(model, ln_c);
                let full = Ray {
                    dims: model.dims(),
                    ln_c,
                    vals: full,
                };
                let healthy =
                    full.is_healthy() && loo.iter().all(|l| l.iter().all(|v| v.healthy()));
                if healthy {
                    return Ok(Self {
                        base: model.clone(),
                        algorithm: Algorithm::Alg1Scaled,
                        repr: Repr::Scaled { full, loo },
                    });
                }
                if !matches!(algorithm, Algorithm::Auto) {
                    return Err(SolveError::Underflow(Algorithm::Alg1Scaled));
                }
                xbar_obs::inc("sweep.escalate");
            }
            let (loo, full) = build_rays::<ExtFloat>(model, 0.0);
            Ok(Self {
                base: model.clone(),
                algorithm: Algorithm::Alg1Ext,
                repr: Repr::Ext {
                    full: Ray {
                        dims: model.dims(),
                        ln_c: 0.0,
                        vals: full,
                    },
                    loo,
                },
            })
        })
    }

    /// The base model the partials were computed for.
    pub fn model(&self) -> &Model {
        &self.base
    }

    /// Decompose into the precomputed parts (for the fleet arena).
    pub(crate) fn into_parts(self) -> (Model, Algorithm, Repr) {
        (self.base, self.algorithm, self.repr)
    }

    /// Reassemble from parts produced by [`SweepSolver::into_parts`].
    pub(crate) fn from_parts(base: Model, algorithm: Algorithm, repr: Repr) -> Self {
        SweepSolver {
            base,
            algorithm,
            repr,
        }
    }

    /// The effective backend (`Alg1Scaled` or `Alg1Ext`).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Solve the *base* model (no edit) from the cached full ray.
    pub fn solve_base(&self) -> Result<SweepSolution, SolveError> {
        xbar_obs::inc("sweep.reuse");
        let ray = match &self.repr {
            Repr::Scaled { full, .. } => RayRepr::Scaled(full.clone()),
            Repr::Ext { full, .. } => RayRepr::Ext(full.clone()),
        };
        SweepSolution::from_ray(self.base.clone(), self.algorithm, ray)
    }

    /// Replace class `r` with `class` (any `α`, `β`, `μ`, `a_r`, weight)
    /// and solve by one `O(C²/a)` recombination against the cached
    /// leave-one-out ray. The replacement is validated like
    /// [`Model::new`].
    pub fn solve_with_class(
        &self,
        r: usize,
        class: TrafficClass,
    ) -> Result<SweepSolution, SolveError> {
        let mut classes = self.base.workload().classes().to_vec();
        classes[r] = class;
        let model = Model::new(self.base.dims(), Workload::from_classes(classes))?;
        self.solve_edited(r, model)
    }

    /// Sweep class `r`'s offered load: solve with `ρ_r = rho` (i.e.
    /// `α_r = ρ_r·μ_r`), keeping `β_r`, `μ_r` and `a_r`. Like
    /// [`Model::with_rho`] this skips re-validation, analytically
    /// continuing the class.
    pub fn solve_with_rho(&self, r: usize, rho: f64) -> Result<SweepSolution, SolveError> {
        let model = self
            .base
            .with_rho(r, rho)
            .expect("with_rho never fails for an in-range class");
        self.solve_edited(r, model)
    }

    /// Sweep class `r`'s peakedness: solve with `β_r/μ_r = x`, keeping
    /// `α_r`, `μ_r` and `a_r`. Like [`Model::with_beta_over_mu`] this
    /// skips re-validation (analytic continuation across the Bernoulli/
    /// Poisson/Pascal boundary).
    pub fn solve_with_beta_over_mu(&self, r: usize, x: f64) -> Result<SweepSolution, SolveError> {
        let model = self
            .base
            .with_beta_over_mu(r, x)
            .expect("with_beta_over_mu never fails for an in-range class");
        self.solve_edited(r, model)
    }

    fn solve_edited(&self, r: usize, model: Model) -> Result<SweepSolution, SolveError> {
        let class = &model.workload().classes()[r];
        let base = &self.base.workload().classes()[r];
        // The weight only enters the measures, not the lattice: a
        // weight-only edit reuses the cached full ray outright.
        let same_lattice = class.alpha == base.alpha
            && class.beta == base.beta
            && class.mu == base.mu
            && class.bandwidth == base.bandwidth;
        let ray = match &self.repr {
            Repr::Scaled { full, loo } => {
                if same_lattice {
                    xbar_obs::inc("sweep.reuse");
                    RayRepr::Scaled(full.clone())
                } else {
                    xbar_obs::inc("sweep.recombine");
                    let vals = xbar_obs::time("sweep.recombine", || {
                        install_class(
                            &loo[r],
                            class.bandwidth as usize,
                            class.rho(),
                            class.beta / class.mu,
                            full.ln_c,
                        )
                    });
                    let ray = Ray {
                        dims: full.dims,
                        ln_c: full.ln_c,
                        vals,
                    };
                    if !ray.is_healthy() {
                        return Err(SolveError::Underflow(Algorithm::Alg1Scaled));
                    }
                    RayRepr::Scaled(ray)
                }
            }
            Repr::Ext { full, loo } => {
                if same_lattice {
                    xbar_obs::inc("sweep.reuse");
                    RayRepr::Ext(full.clone())
                } else {
                    xbar_obs::inc("sweep.recombine");
                    let vals = xbar_obs::time("sweep.recombine", || {
                        install_class(
                            &loo[r],
                            class.bandwidth as usize,
                            class.rho(),
                            class.beta / class.mu,
                            0.0,
                        )
                    });
                    RayRepr::Ext(Ray {
                        dims: full.dims,
                        ln_c: 0.0,
                        vals,
                    })
                }
            }
        };
        SweepSolution::from_ray(model, self.algorithm, ray)
    }

    /// Exact §4 sensitivity gradients of the *base* model with respect
    /// to class `s`'s offered load `ρ_s` and peakedness `y_s = β_s/μ_s`,
    /// computed analytically from the cached partials — no finite
    /// differences, no extra solves.
    ///
    /// Differentiating the recombination term-by-term gives the
    /// derivative ray `Q'_θ(d) = Σ_{j≥1} Φ'_θ(j) · Q_{-s}(d + j·a_s)`
    /// (product rule down the `Φ_s` recurrence), and every measure
    /// gradient is a function of the log-derivatives
    /// `L_θ(d) = Q'_θ(d)/Q(d)`:
    ///
    /// * `∂B_r/∂θ = B_r · (L_θ(a_r) − L_θ(0))` — the blocking ratio is
    ///   `Q(shrunk)/Q(full)` scaled by a θ-independent permutation count;
    /// * `∂E_r/∂θ` follows the `E_r` backward recursion with each stage
    ///   ratio `h_t` perturbed by `h_t·(L_θ(d_t + a_r) − L_θ(d_t))` plus
    ///   the direct `∂λ_r/∂θ` drive when `r = s`;
    /// * `∂W/∂θ = Σ_r w_r · ∂E_r/∂θ`.
    pub fn gradients(&self, s: usize) -> SweepGradients {
        xbar_obs::inc("sweep.gradients");
        match &self.repr {
            Repr::Scaled { full, loo } => gradients_impl(&self.base, full, &loo[s], s),
            Repr::Ext { full, loo } => gradients_impl(&self.base, full, &loo[s], s),
        }
    }
}

/// Scaled `dΦ_s/dρ` and `dΦ_s/dy` series (same `c^{2ja}` scale as
/// [`phi_series`]), by the product rule down the `Φ` recurrence:
/// `Φ'(j) = Φ'(j−1)·c_j + Φ(j−1)·∂c_j/∂θ` with
/// `c_j = factor·(ρ + y·(j−1))/j`.
fn dphi_series<S: RayScalar>(
    len: usize,
    a: usize,
    rho: f64,
    y: f64,
    ln_c: f64,
) -> (Vec<S>, Vec<S>) {
    let jmax = (len - 1) / a;
    let factor = (2.0 * a as f64 * ln_c).exp();
    let mut phi = S::from_ln(0.0);
    let mut d_rho = Vec::with_capacity(jmax + 1);
    let mut d_y = Vec::with_capacity(jmax + 1);
    let mut cur_rho = S::zero();
    let mut cur_y = S::zero();
    d_rho.push(cur_rho);
    d_y.push(cur_y);
    for j in 1..=jmax {
        let jf = j as f64;
        let cj = factor * (rho + y * (jf - 1.0)) / jf;
        cur_rho = cur_rho.scale(cj).add(phi.scale(factor / jf));
        cur_y = cur_y.scale(cj).add(phi.scale(factor * (jf - 1.0) / jf));
        d_rho.push(cur_rho);
        d_y.push(cur_y);
        phi = phi.scale(cj);
    }
    (d_rho, d_y)
}

/// `Σ_{j≥1} dphi[j] · base[d + j·a]` for every ray point `d` — the
/// derivative ray, at the same implicit scale as the full ray.
fn derivative_ray<S: RayScalar>(base: &[S], dphi: &[S], a: usize) -> Vec<S> {
    S::combine(base, dphi, a, false)
}

fn gradients_impl<S: RayScalar>(
    model: &Model,
    full: &Ray<S>,
    loo_s: &[S],
    s: usize,
) -> SweepGradients {
    let classes = model.workload().classes();
    let dims = full.dims;
    let cs = &classes[s];
    let a_s = cs.bandwidth as usize;
    let c_top = full.vals.len() - 1;
    let (dphi_rho, dphi_y) = dphi_series::<S>(c_top + 1, a_s, cs.rho(), cs.beta / cs.mu, full.ln_c);
    let dray_rho = derivative_ray(loo_s, &dphi_rho, a_s);
    let dray_y = derivative_ray(loo_s, &dphi_y, a_s);
    // Log-derivatives L_θ(d) = Q'_θ(d)/Q(d): the shared scale cancels.
    let l_rho: Vec<f64> = (0..=c_top)
        .map(|d| dray_rho[d].ratio_to(full.vals[d]))
        .collect();
    let l_y: Vec<f64> = (0..=c_top)
        .map(|d| dray_y[d].ratio_to(full.vals[d]))
        .collect();

    let r_count = classes.len();
    let mut out = SweepGradients {
        nonblocking_by_rho: vec![0.0; r_count],
        nonblocking_by_beta: vec![0.0; r_count],
        concurrency_by_rho: vec![0.0; r_count],
        concurrency_by_beta: vec![0.0; r_count],
        revenue_by_rho: 0.0,
        revenue_by_beta: 0.0,
    };
    for (r, cr) in classes.iter().enumerate() {
        let a = cr.bandwidth as usize;
        // ∂B_r: B_r = Q(ray a)/Q(ray 0) / P(N1,a)P(N2,a); the
        // permutation factor is θ-independent.
        let pp = permutation(dims.n1 as u64, a as u64) * permutation(dims.n2 as u64, a as u64);
        let b_r = if pp > 0.0 && a <= c_top {
            full.index_ratio(a, 0) / pp
        } else {
            0.0
        };
        if a <= c_top {
            out.nonblocking_by_rho[r] = b_r * (l_rho[a] - l_rho[0]);
            out.nonblocking_by_beta[r] = b_r * (l_y[a] - l_y[0]);
        }
        // ∂E_r: the measures' backward recursion
        //   E ← h_t · (ρ_r + y_r · E),  h_t = Q(d_t + a)/Q(d_t),
        // differentiated with ∂h_t = h_t·(L(d_t+a) − L(d_t)) and the
        // direct ∂λ_r drive when r = s.
        let rho_r = cr.rho();
        let y_r = cr.beta / cr.mu;
        let own = if r == s { 1.0 } else { 0.0 };
        let tmax = c_top / a;
        let (mut e, mut de_rho, mut de_y) = (0.0f64, 0.0f64, 0.0f64);
        for t in (0..=tmax).rev() {
            let dt = t * a;
            let up = dt + a;
            let (h, lh_rho, lh_y) = if up <= c_top {
                (
                    full.index_ratio(up, dt),
                    l_rho[up] - l_rho[dt],
                    l_y[up] - l_y[dt],
                )
            } else {
                (0.0, 0.0, 0.0)
            };
            let e_next = e;
            let drive = rho_r + y_r * e_next;
            de_rho = h * lh_rho * drive + h * (own + y_r * de_rho);
            de_y = h * lh_y * drive + h * (own * e_next + y_r * de_y);
            e = h * drive;
        }
        out.concurrency_by_rho[r] = de_rho;
        out.concurrency_by_beta[r] = de_y;
        out.revenue_by_rho += cr.weight * de_rho;
        out.revenue_by_beta += cr.weight * de_y;
    }
    out
}

/// FNV-1a fingerprint of everything a leave-one-out ray `G_{-r}`
/// depends on: the dims, the backend, the swept slot `r`, and every
/// *other* class's full parameter set (weights included — they feed the
/// measures of later recombinations). Class `r`'s own parameters are
/// deliberately excluded: that is exactly the sharing the grid exploits.
fn loo_fingerprint(model: &Model, r: usize, algorithm: Algorithm) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&model.dims().n1.to_le_bytes());
    eat(&model.dims().n2.to_le_bytes());
    eat(format!("{algorithm:?}").as_bytes());
    eat(&(r as u64).to_le_bytes());
    for (s, c) in model.workload().classes().iter().enumerate() {
        if s == r {
            continue;
        }
        eat(&(s as u64).to_le_bytes());
        eat(&c.alpha.to_bits().to_le_bytes());
        eat(&c.beta.to_bits().to_le_bytes());
        eat(&c.mu.to_bits().to_le_bytes());
        eat(&c.bandwidth.to_le_bytes());
        eat(&c.weight.to_bits().to_le_bytes());
    }
    h
}

/// A multi-dimensional sweep grid: `G_{-r}` cached **per class set**,
/// not per solver.
///
/// A 2-D `(ρ_r, β_r)` sweep of class `r` needs only *one* leave-one-out
/// precompute — every cell recombines against the same `G_{-r}` — and a
/// geometry axis (different `Dims`) adds one precompute per geometry,
/// not one per cell. [`SweepSolver`] alone cannot amortise this across
/// rows whose *base* models differ only in class `r`; the grid keys its
/// cache by [`loo_fingerprint`] (dims + backend + the classes other
/// than `r`), so such rows share the cached partials.
///
/// Cache hits count as `sweep.grid.reuse`, misses as
/// `sweep.grid.build`; batch warm-up of missing entries is sharded over
/// the persistent worker pool (see [`SweepGrid::solve_batch`]).
///
/// ```
/// use xbar_core::{Algorithm, Dims, Model, SweepGrid};
/// use xbar_traffic::{TrafficClass, Workload};
///
/// let w = Workload::new()
///     .with(TrafficClass::poisson(0.2))
///     .with(TrafficClass::bpp(0.1, 0.05, 1.0));
/// let model = Model::new(Dims::square(12), w).unwrap();
/// let grid = SweepGrid::new(Algorithm::Auto);
/// for i in 0..4 {
///     for j in 0..4 {
///         let class = TrafficClass::bpp(0.05 + 0.05 * i as f64, 0.02 * j as f64, 1.0);
///         // 16 cells, one precompute.
///         grid.solve_cell(&model, 1, class).unwrap();
///     }
/// }
/// assert_eq!(grid.len(), 1);
/// ```
pub struct SweepGrid {
    algorithm: Algorithm,
    entries: std::sync::Mutex<Vec<(u64, std::sync::Arc<SweepSolver>)>>,
}

impl SweepGrid {
    /// An empty grid cache with the given backend policy (per
    /// [`SweepSolver::new`]).
    pub fn new(algorithm: Algorithm) -> Self {
        SweepGrid {
            algorithm,
            entries: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Distinct `G_{-r}` entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Get-or-build the solver whose leave-one-out ray `G_{-r}` matches
    /// `(model, r)`. A hit counts `sweep.grid.reuse`; a miss builds the
    /// full precompute and counts `sweep.grid.build`.
    ///
    /// The accounting is race-free under concurrent callers: when two
    /// threads miss on the same key simultaneously, both build, but only
    /// the thread whose insert *wins* counts `sweep.grid.build` — the
    /// loser adopts the canonical cached entry and counts
    /// `sweep.grid.reuse` instead. The invariant `build == len()` and
    /// `build + reuse == calls` therefore holds at any thread count.
    pub fn solver(
        &self,
        model: &Model,
        r: usize,
    ) -> Result<std::sync::Arc<SweepSolver>, SolveError> {
        let key = loo_fingerprint(model, r, self.algorithm);
        if let Some(found) = self.lookup(key) {
            xbar_obs::inc("sweep.grid.reuse");
            return Ok(found);
        }
        let built = std::sync::Arc::new(SweepSolver::new(model, self.algorithm)?);
        match self.insert(key, built) {
            Inserted::Won(s) => {
                xbar_obs::inc("sweep.grid.build");
                Ok(s)
            }
            Inserted::Lost(s) => {
                xbar_obs::inc("sweep.grid.reuse");
                Ok(s)
            }
        }
    }

    /// Solve one grid cell: `model` with class `r` replaced by `class`,
    /// through the shared `G_{-r}` entry (one `O(C²/a)` recombination on
    /// a hit).
    pub fn solve_cell(
        &self,
        model: &Model,
        r: usize,
        class: TrafficClass,
    ) -> Result<SweepSolution, SolveError> {
        self.solver(model, r)?.solve_with_class(r, class)
    }

    /// Pre-build every *distinct* missing `G_{-r}` entry for the given
    /// `(model, r)` pairs in parallel over the persistent worker pool
    /// (via [`crate::fleet`]'s shards). Returns how many entries this
    /// call actually built (races lost to concurrent inserters are not
    /// counted, matching the `sweep.grid.build` counter). Build failures
    /// are left out of the cache and resurface as per-cell errors on the
    /// subsequent [`SweepGrid::solve_cell`].
    pub fn warm(&self, pairs: &[(Model, usize)]) -> usize {
        // Collect the distinct missing keys (first occurrence wins).
        let mut missing: Vec<(u64, usize)> = Vec::new();
        for (i, (model, r)) in pairs.iter().enumerate() {
            let key = loo_fingerprint(model, *r, self.algorithm);
            if self.lookup(key).is_none() && missing.iter().all(|&(k, _)| k != key) {
                missing.push((key, i));
            }
        }
        let models: Vec<Model> = missing.iter().map(|&(_, i)| pairs[i].0.clone()).collect();
        let built = crate::fleet::sweep_many(&models, self.algorithm);
        let mut won = 0;
        for ((key, _), solver) in missing.iter().zip(built) {
            if let Ok(s) = solver {
                // A concurrent caller may have inserted this key since the
                // lookup above; only the winning insert is a `build`.
                if let Inserted::Won(_) = self.insert(*key, std::sync::Arc::new(s)) {
                    xbar_obs::inc("sweep.grid.build");
                    won += 1;
                }
            }
        }
        won
    }

    /// Solve a batch of cells `(model, r, class)`, building every
    /// *distinct* missing `G_{-r}` entry in parallel over the persistent
    /// worker pool first (see [`SweepGrid::warm`]), then recombining the
    /// cells in order. Results keep the input order.
    pub fn solve_batch(
        &self,
        cells: &[(Model, usize, TrafficClass)],
    ) -> Vec<Result<SweepSolution, SolveError>> {
        let pairs: Vec<(Model, usize)> = cells.iter().map(|(m, r, _)| (m.clone(), *r)).collect();
        self.warm(&pairs);
        cells
            .iter()
            .map(|(model, r, class)| self.solve_cell(model, *r, class.clone()))
            .collect()
    }

    fn lookup(&self, key: u64) -> Option<std::sync::Arc<SweepSolver>> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| std::sync::Arc::clone(s))
    }

    /// Insert under the lock, deduping by key. Returns the *canonical*
    /// entry for `key`: the given solver when this call won the insert,
    /// or the previously-cached one when a concurrent caller got there
    /// first (the race loser's build is discarded).
    fn insert(&self, key: u64, solver: std::sync::Arc<SweepSolver>) -> Inserted {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, existing)) = entries.iter().find(|(k, _)| *k == key) {
            return Inserted::Lost(std::sync::Arc::clone(existing));
        }
        entries.push((key, std::sync::Arc::clone(&solver)));
        Inserted::Won(solver)
    }
}

/// Outcome of a [`SweepGrid`] insert race (both arms carry the canonical
/// cached solver for the key).
enum Inserted {
    /// This call inserted the entry — count `sweep.grid.build`.
    Won(std::sync::Arc<SweepSolver>),
    /// A concurrent caller inserted first — count `sweep.grid.reuse`.
    Lost(std::sync::Arc<SweepSolver>),
}

/// Exact gradients of every measure of the base model with respect to
/// *one* perturbed class `s` (see [`SweepSolver::gradients`]).
///
/// Entry `r` of each vector is `∂(measure of class r)/∂θ_s`.
#[derive(Clone, Debug)]
pub struct SweepGradients {
    /// `∂B_r/∂ρ_s` — tuple availability w.r.t. offered load.
    pub nonblocking_by_rho: Vec<f64>,
    /// `∂B_r/∂y_s` with `y_s = β_s/μ_s` — availability w.r.t. peakedness.
    pub nonblocking_by_beta: Vec<f64>,
    /// `∂E_r/∂ρ_s` — expected concurrency w.r.t. offered load.
    pub concurrency_by_rho: Vec<f64>,
    /// `∂E_r/∂y_s` — expected concurrency w.r.t. peakedness.
    pub concurrency_by_beta: Vec<f64>,
    /// `∂W/∂ρ_s` — revenue (weighted concurrency) w.r.t. offered load.
    pub revenue_by_rho: f64,
    /// `∂W/∂y_s` — revenue w.r.t. peakedness.
    pub revenue_by_beta: f64,
}

pub(crate) enum RayRepr {
    Scaled(Ray<f64>),
    Ext(Ray<ExtFloat>),
}

impl QRatio for RayRepr {
    fn dims(&self) -> Dims {
        match self {
            RayRepr::Scaled(r) => r.dims(),
            RayRepr::Ext(r) => r.dims(),
        }
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        match self {
            RayRepr::Scaled(r) => r.q_ratio(num, den),
            RayRepr::Ext(r) => r.q_ratio(num, den),
        }
    }
}

/// One solved sweep point: the recombined diagonal ray plus the
/// evaluated measures. Mirrors [`Solution`](crate::Solution)'s accessors
/// for everything the ray can answer (all the scalar measures, on-ray
/// `measures_at`, shadow costs and the closed-form revenue gradient).
pub struct SweepSolution {
    model: Model,
    algorithm: Algorithm,
    ray: RayRepr,
    measures: SwitchMeasures,
}

impl SweepSolution {
    pub(crate) fn from_ray(
        model: Model,
        algorithm: Algorithm,
        ray: RayRepr,
    ) -> Result<Self, SolveError> {
        let m = measures(&model, &ray);
        m.validate().map_err(|source| {
            xbar_obs::inc("solver.reject.guard");
            SolveError::Guard { algorithm, source }
        })?;
        Ok(Self {
            model,
            algorithm,
            ray,
            measures: m,
        })
    }

    /// The (possibly edited) model this point solves.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The backend that produced the ray.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// All measures at the full dims.
    pub fn measures(&self) -> &SwitchMeasures {
        &self.measures
    }

    /// Blocking probability `1 − B_r` complement for class `r`.
    pub fn blocking(&self, r: usize) -> f64 {
        self.measures.classes[r].blocking
    }

    /// Tuple availability `B_r` for class `r`.
    pub fn nonblocking(&self, r: usize) -> f64 {
        self.measures.classes[r].nonblocking
    }

    /// Expected concurrency `E_r` for class `r`.
    pub fn concurrency(&self, r: usize) -> f64 {
        self.measures.classes[r].concurrency
    }

    /// Throughput `μ_r·E_r` for class `r`.
    pub fn throughput(&self, r: usize) -> f64 {
        self.measures.classes[r].throughput
    }

    /// Call acceptance ratio for class `r`.
    pub fn call_acceptance(&self, r: usize) -> f64 {
        self.measures.classes[r].call_acceptance
    }

    /// Revenue `W = Σ_r w_r·E_r`.
    pub fn revenue(&self) -> f64 {
        self.measures.revenue
    }

    /// Total throughput `Σ_r μ_r·E_r`.
    pub fn total_throughput(&self) -> f64 {
        self.measures.total_throughput
    }

    /// Measures of the sub-switch at `dims` — which must lie on the main
    /// diagonal ray `(N1−d, N2−d)` (panics otherwise; a full lattice is
    /// needed for off-ray sub-switches).
    pub fn measures_at(&self, dims: Dims) -> SwitchMeasures {
        measures_at(&self.model, &self.ray, dims)
    }

    /// §4 shadow cost of admitting one class-`r` call.
    pub fn shadow_cost(&self, r: usize) -> f64 {
        shadow_cost(&self.model, &self.ray, r)
    }

    /// Closed-form §4 revenue gradient `∂W/∂ρ_r` (Poisson-exact).
    pub fn revenue_gradient_rho(&self, r: usize) -> f64 {
        revenue_gradient_rho_closed(&self.model, &self.ray, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!(
            (a - b).abs() / scale < tol,
            "{a} vs {b} (tol {tol}, rel {})",
            (a - b).abs() / scale
        );
    }

    fn mixed_model(n1: u32, n2: u32) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.25))
            .with(TrafficClass::bpp(0.1, 0.3, 1.0).with_weight(2.0))
            .with(TrafficClass::bpp(0.4, -0.004, 0.8).with_bandwidth(2))
            .with(
                TrafficClass::poisson(0.05)
                    .with_bandwidth(2)
                    .with_weight(0.5),
            );
        Model::new(Dims::new(n1, n2), w).unwrap()
    }

    fn assert_matches_solution(point: &SweepSolution, model: &Model, alg: Algorithm, tol: f64) {
        let sol = solve(model, alg).unwrap();
        for r in 0..model.num_classes() {
            close(point.nonblocking(r), sol.nonblocking(r), tol);
            close(point.concurrency(r), sol.concurrency(r), tol);
            close(point.throughput(r), sol.throughput(r), tol);
            close(point.call_acceptance(r), sol.call_acceptance(r), tol);
        }
        close(point.revenue(), sol.revenue(), tol);
        close(point.total_throughput(), sol.total_throughput(), tol);
    }

    #[test]
    fn base_solution_matches_full_solve_both_backends() {
        let model = mixed_model(12, 12);
        for alg in [Algorithm::Alg1Scaled, Algorithm::Alg1Ext] {
            let sweep = SweepSolver::new(&model, alg).unwrap();
            let point = sweep.solve_base().unwrap();
            assert_matches_solution(&point, &model, Algorithm::Alg1Ext, 1e-10);
        }
    }

    #[test]
    fn rectangular_dims_match_full_solve() {
        let model = mixed_model(9, 5);
        let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        let point = sweep.solve_base().unwrap();
        assert_matches_solution(&point, &model, Algorithm::Alg1Ext, 1e-10);
    }

    #[test]
    fn class_edits_match_fresh_solves() {
        let model = mixed_model(10, 10);
        let sweep = SweepSolver::new(&model, Algorithm::Alg1Ext).unwrap();
        // Rho sweep, beta sign flip (Pascal → Poisson → Bernoulli) and a
        // bandwidth change all hit the recombination path.
        let edits: Vec<(usize, TrafficClass)> = vec![
            (0, TrafficClass::poisson(0.6)),
            (1, TrafficClass::bpp(0.1, 0.0, 1.0).with_weight(2.0)),
            (1, TrafficClass::bpp(0.1, -0.01, 1.0).with_weight(2.0)),
            (2, TrafficClass::bpp(0.4, -0.004, 0.8).with_bandwidth(3)),
            (3, TrafficClass::poisson(0.3).with_weight(0.5)),
        ];
        for (r, class) in edits {
            let mut classes = model.workload().classes().to_vec();
            classes[r] = class.clone();
            let edited = Model::new(model.dims(), Workload::from_classes(classes)).unwrap();
            let point = sweep.solve_with_class(r, class).unwrap();
            assert_matches_solution(&point, &edited, Algorithm::Alg1Ext, 1e-10);
        }
    }

    #[test]
    fn rho_and_beta_sweep_helpers_match_model_edits() {
        let model = mixed_model(8, 8);
        let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        let by_rho = sweep.solve_with_rho(1, 0.35).unwrap();
        let edited = model.with_rho(1, 0.35).unwrap();
        assert_matches_solution(&by_rho, &edited, Algorithm::Alg1Ext, 1e-10);
        let by_beta = sweep.solve_with_beta_over_mu(1, 0.0).unwrap();
        let edited = model.with_beta_over_mu(1, 0.0).unwrap();
        assert_matches_solution(&by_beta, &edited, Algorithm::Alg1Ext, 1e-10);
    }

    #[test]
    fn weight_only_edit_reuses_cached_ray() {
        let model = mixed_model(8, 8);
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        let reweighted = TrafficClass::poisson(0.25).with_weight(9.0);
        let point = sweep.solve_with_class(0, reweighted).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sweep.reuse"), Some(1));
        assert_eq!(snap.counter("sweep.recombine"), None);
        // Measures still reflect the new weight.
        assert!(point.revenue() > sweep.solve_base().unwrap().revenue());
    }

    #[test]
    fn scaled_backend_survives_n256_at_figure_loads_and_matches_ext() {
        // Figure-style per-tuple loads (tilde loads divided by N) keep
        // the scaled φ̂ series in range even at N = 256; heavier loads
        // are exercised by the escalation test below.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.005))
            .with(TrafficClass::bpp(0.003, 0.0005, 1.0));
        let model = Model::new(Dims::square(256), w).unwrap();
        let scaled = SweepSolver::new(&model, Algorithm::Alg1Scaled).unwrap();
        assert_eq!(scaled.algorithm(), Algorithm::Alg1Scaled);
        let ext = SweepSolver::new(&model, Algorithm::Alg1Ext).unwrap();
        let ps = scaled.solve_with_rho(0, 0.008).unwrap();
        let pe = ext.solve_with_rho(0, 0.008).unwrap();
        for r in 0..2 {
            close(ps.nonblocking(r), pe.nonblocking(r), 1e-9);
            close(ps.concurrency(r), pe.concurrency(r), 1e-9);
        }
    }

    #[test]
    fn measures_at_walks_the_ray() {
        let model = mixed_model(10, 6);
        let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        let point = sweep.solve_base().unwrap();
        let sol = solve(&model, Algorithm::Alg1Ext).unwrap();
        let sub = Dims::new(8, 4); // d = 2 on the ray
        let a = point.measures_at(sub);
        let b = sol.measures_at(sub);
        for r in 0..model.num_classes() {
            close(a.classes[r].nonblocking, b.classes[r].nonblocking, 1e-10);
            close(a.classes[r].concurrency, b.classes[r].concurrency, 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "outside the solved diagonal ray")]
    fn off_ray_access_panics() {
        let model = mixed_model(6, 6);
        let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        let point = sweep.solve_base().unwrap();
        point.measures_at(Dims::new(5, 6));
    }

    #[test]
    fn shadow_cost_and_gradient_match_solution() {
        let model = mixed_model(9, 9);
        let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        let point = sweep.solve_base().unwrap();
        let sol = solve(&model, Algorithm::Alg1Ext).unwrap();
        for r in 0..model.num_classes() {
            close(point.shadow_cost(r), sol.shadow_cost(r), 1e-9);
            close(
                point.revenue_gradient_rho(r),
                sol.revenue_gradient_rho(r),
                1e-9,
            );
        }
    }

    #[test]
    fn exact_gradients_match_central_differences() {
        let model = mixed_model(8, 8);
        for alg in [Algorithm::Alg1Scaled, Algorithm::Alg1Ext] {
            let sweep = SweepSolver::new(&model, alg).unwrap();
            for s in 0..model.num_classes() {
                let g = sweep.gradients(s);
                let cs = &model.workload().classes()[s];
                let h_rho = 1e-6 * cs.rho().max(1.0);
                let up = solve(
                    &model.with_rho(s, cs.rho() + h_rho).unwrap(),
                    Algorithm::Alg1Ext,
                )
                .unwrap();
                let dn = solve(
                    &model.with_rho(s, cs.rho() - h_rho).unwrap(),
                    Algorithm::Alg1Ext,
                )
                .unwrap();
                let y = cs.beta / cs.mu;
                let h_y = 1e-6;
                let up_y = solve(
                    &model.with_beta_over_mu(s, y + h_y).unwrap(),
                    Algorithm::Alg1Ext,
                )
                .unwrap();
                let dn_y = solve(
                    &model.with_beta_over_mu(s, y - h_y).unwrap(),
                    Algorithm::Alg1Ext,
                )
                .unwrap();
                for r in 0..model.num_classes() {
                    let fd = (up.nonblocking(r) - dn.nonblocking(r)) / (2.0 * h_rho);
                    close(g.nonblocking_by_rho[r], fd, 1e-5);
                    let fd = (up.concurrency(r) - dn.concurrency(r)) / (2.0 * h_rho);
                    close(g.concurrency_by_rho[r], fd, 1e-5);
                    let fd = (up_y.nonblocking(r) - dn_y.nonblocking(r)) / (2.0 * h_y);
                    close(g.nonblocking_by_beta[r], fd, 1e-5);
                    let fd = (up_y.concurrency(r) - dn_y.concurrency(r)) / (2.0 * h_y);
                    close(g.concurrency_by_beta[r], fd, 1e-5);
                }
                let fd = (up.revenue() - dn.revenue()) / (2.0 * h_rho);
                close(g.revenue_by_rho, fd, 1e-5);
                let fd = (up_y.revenue() - dn_y.revenue()) / (2.0 * h_y);
                close(g.revenue_by_beta, fd, 1e-5);
            }
        }
    }

    #[test]
    fn grid_shares_one_loo_entry_across_rho_beta_cells() {
        let model = mixed_model(8, 8);
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        let grid = SweepGrid::new(Algorithm::Auto);
        let fresh = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let class = TrafficClass::bpp(0.05 + 0.1 * i as f64, 0.02 * j as f64, 1.0);
                let cell = grid.solve_cell(&model, 1, class.clone()).unwrap();
                let want = fresh.solve_with_class(1, class).unwrap();
                for r in 0..model.num_classes() {
                    assert_eq!(cell.nonblocking(r).to_bits(), want.nonblocking(r).to_bits());
                    assert_eq!(cell.concurrency(r).to_bits(), want.concurrency(r).to_bits());
                }
            }
        }
        assert_eq!(grid.len(), 1);
        let snap = reg.snapshot();
        // One build for the first cell plus the uncached `fresh` solver's
        // precompute do not show up as grid counters; 8 of the 9 cells hit.
        assert_eq!(snap.counter("sweep.grid.build"), Some(1));
        assert_eq!(snap.counter("sweep.grid.reuse"), Some(8));
    }

    #[test]
    fn grid_rows_differing_only_in_the_swept_class_share_the_entry() {
        // Two *base* models that differ only in class 0's parameters: a
        // per-solver cache would precompute twice; the per-class-set grid
        // reuses the first entry for the second row.
        let w1 = Workload::new()
            .with(TrafficClass::poisson(0.25))
            .with(TrafficClass::bpp(0.1, 0.3, 1.0).with_weight(2.0));
        let w2 = Workload::new()
            .with(TrafficClass::poisson(0.7).with_weight(3.0))
            .with(TrafficClass::bpp(0.1, 0.3, 1.0).with_weight(2.0));
        let m1 = Model::new(Dims::square(8), w1).unwrap();
        let m2 = Model::new(Dims::square(8), w2).unwrap();
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        let grid = SweepGrid::new(Algorithm::Auto);
        let a = grid.solve_cell(&m1, 0, TrafficClass::poisson(0.4)).unwrap();
        let b = grid.solve_cell(&m2, 0, TrafficClass::poisson(0.4)).unwrap();
        assert_eq!(grid.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sweep.grid.build"), Some(1));
        assert_eq!(snap.counter("sweep.grid.reuse"), Some(1));
        // Identical cells (both bases collapse to the same edited model).
        for r in 0..2 {
            assert_eq!(a.nonblocking(r).to_bits(), b.nonblocking(r).to_bits());
        }
        // A geometry axis is a separate class set → second entry.
        let m3 = Model::new(Dims::new(10, 6), m1.workload().clone()).unwrap();
        grid.solve_cell(&m3, 0, TrafficClass::poisson(0.4)).unwrap();
        assert_eq!(grid.len(), 2);
    }

    #[test]
    fn grid_batch_warms_distinct_entries_and_matches_serial_cells() {
        let cells: Vec<(Model, usize, TrafficClass)> = (0u32..4)
            .flat_map(|g| {
                let model = mixed_model(6 + g, 6 + g);
                (0..3).map(move |i| {
                    (
                        model.clone(),
                        1,
                        TrafficClass::bpp(0.05 + 0.1 * i as f64, 0.01, 1.0),
                    )
                })
            })
            .collect();
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        let grid = SweepGrid::new(Algorithm::Auto);
        let batch = grid.solve_batch(&cells);
        assert_eq!(grid.len(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sweep.grid.build"), Some(4));
        let serial = SweepGrid::new(Algorithm::Auto);
        for (got, (model, r, class)) in batch.iter().zip(&cells) {
            let got = got.as_ref().expect("batch cell failed");
            let want = serial.solve_cell(model, *r, class.clone()).unwrap();
            for k in 0..model.num_classes() {
                assert_eq!(got.nonblocking(k).to_bits(), want.nonblocking(k).to_bits());
            }
        }
    }

    #[test]
    fn grid_accounting_is_race_free_under_concurrent_misses() {
        // Many threads hammer the same grid with cells spanning a handful
        // of distinct class sets, all arriving at once so cold keys race
        // their check-then-insert window. The fixed accounting credits
        // `build` only to the thread whose insert wins; race losers (and
        // plain hits) count `reuse`. Whatever the interleaving:
        //   build == distinct entries,  build + reuse == total calls.
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        let grid = std::sync::Arc::new(SweepGrid::new(Algorithm::Auto));
        let scope_handle = xbar_obs::current_scope();
        const THREADS: usize = 8;
        const CALLS_PER_THREAD: usize = 12;
        const GEOMETRIES: u32 = 3;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let grid = std::sync::Arc::clone(&grid);
                let barrier = std::sync::Arc::clone(&barrier);
                let scope_handle = scope_handle.clone();
                s.spawn(move || {
                    let _g = scope_handle.enter();
                    barrier.wait();
                    for i in 0..CALLS_PER_THREAD {
                        // Rotate geometries so every thread misses every
                        // key early on; the swept class's own parameters
                        // vary per call but never change the key.
                        let g = ((t + i) as u32) % GEOMETRIES;
                        let model = mixed_model(6 + g, 6 + g);
                        let class = TrafficClass::bpp(0.05 + 0.01 * i as f64, 0.01, 1.0);
                        grid.solve_cell(&model, 1, class).unwrap();
                    }
                });
            }
        });
        assert_eq!(grid.len(), GEOMETRIES as usize);
        let snap = reg.snapshot();
        let build = snap.counter("sweep.grid.build").unwrap_or(0);
        let reuse = snap.counter("sweep.grid.reuse").unwrap_or(0);
        assert_eq!(build, GEOMETRIES as u64, "one build per distinct entry");
        assert_eq!(
            build + reuse,
            (THREADS * CALLS_PER_THREAD) as u64,
            "every solver() call counts exactly one of build/reuse"
        );
    }

    #[test]
    fn explicit_scaled_overload_reports_underflow() {
        // A load heavy enough that the scaled φ̂ envelope blows up at
        // N = 512 (ρ·c² ≫ 1 compounds to e^2000-ish terms).
        let w = Workload::new()
            .with(TrafficClass::poisson(300.0))
            .with(TrafficClass::bpp(0.2, 0.1, 1.0));
        let model = Model::new(Dims::square(512), w).unwrap();
        match SweepSolver::new(&model, Algorithm::Alg1Scaled) {
            Err(SolveError::Underflow(Algorithm::Alg1Scaled)) => {}
            Ok(s) => {
                // If the envelope holds, the result must still be sane.
                assert!(s.solve_base().is_ok());
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
        // Auto escalates instead of failing.
        let auto = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        assert!(auto.solve_base().is_ok());
    }
}

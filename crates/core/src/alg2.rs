//! **Algorithm 2** of the paper (§5.1): mean-value analysis directly on the
//! normalisation-constant *ratios*
//!
//! ```text
//! F_i(N) = Q(N − 1_i)/Q(N),            i ∈ {1, 2}
//! H_r(N) = Q(N − a_r·I)/Q(N)           (a staircase product of F's)
//! D_r(N) = Σ_{m≥0} (β_r/μ_r)^m · Q(N − m·a_r·I)/Q(N)
//! ```
//!
//! whose values stay `O(N)` — this is the paper's numerically-stable
//! alternative to recursing on `Q` itself, at the cost of `O(R)` extra
//! lattices ("substantially more space", §5.1).
//!
//! The printed Step 1/Step 2 of Algorithm 2 are garbled (self-contradictory
//! `F_i(0)` initialisation, missing parentheses, and eq. 19 does not satisfy
//! its own definition eq. 17 — see DESIGN.md). The sweep below is re-derived
//! from eq. 16; each lattice point `(n1, n2)` with `n1, n2 ≥ 1` uses
//!
//! ```text
//! F_1(n) = n1 / (1 + Σ_{R1} a·ρ·L_1r(n) + Σ_{R2} a·ρ·L_1r(n)·D_r(n − a·I))
//! L_1r(n) = Q(n − a·I)/Q(n − 1_1)      (staircase product, zero if n − a·I
//!                                       leaves the quadrant)
//! D_r(n) = 1 + (β/μ)·H_r(n)·D_r(n − a·I)        (corrected eq. 19)
//! ```
//!
//! with boundaries `F_1(n1, 0) = n1`, `F_2(0, n2) = n2`,
//! `F_i = 0` where `N − 1_i` leaves the quadrant, and `D_r = 1` wherever
//! `n − a·I` does. All of it is validated against Algorithm 1 and brute
//! force in the tests.

use crate::alg1::QRatio;
use crate::model::{Dims, Model};

/// Solved mean-value lattices for a model.
#[derive(Clone, Debug)]
pub struct Mva {
    dims: Dims,
    cols: usize,
    f1: Vec<f64>,
    f2: Vec<f64>,
}

impl Mva {
    /// Run Algorithm 2 for `model`.
    pub fn solve(model: &Model) -> Self {
        let dims = model.dims();
        let (n1, n2) = (dims.n1 as i64, dims.n2 as i64);
        let cols = dims.n2 as usize + 1;
        let size = (dims.n1 as usize + 1) * cols;

        struct Term {
            a: i64,
            a_rho: f64,
            beta_over_mu: f64, // 0 for Poisson: D ≡ 1 and the sums merge
            bursty_index: usize,
        }
        let mut terms = Vec::new();
        let mut n_bursty = 0usize;
        for c in model.workload().classes() {
            let bursty_index = if c.is_poisson() {
                usize::MAX
            } else {
                n_bursty += 1;
                n_bursty - 1
            };
            terms.push(Term {
                a: c.bandwidth as i64,
                a_rho: c.bandwidth as f64 * c.rho(),
                beta_over_mu: c.beta / c.mu,
                bursty_index,
            });
        }

        let mut f1 = vec![0.0f64; size];
        let mut f2 = vec![0.0f64; size];
        let mut d: Vec<Vec<f64>> = vec![vec![1.0; size]; n_bursty];
        let at = |i1: i64, i2: i64| -> usize { i1 as usize * cols + i2 as usize };

        // Q(num)/Q(den) on the partially-built lattice, for num ≤ den
        // componentwise (telescoping staircase of F's).
        let ratio = |f1: &[f64], f2: &[f64], num: (i64, i64), den: (i64, i64)| -> f64 {
            if num.0 < 0 || num.1 < 0 {
                return 0.0;
            }
            debug_assert!(num.0 <= den.0 && num.1 <= den.1);
            let mut acc = 1.0;
            for x in (num.0 + 1)..=den.0 {
                acc *= f1[at(x, den.1)];
            }
            for y in (num.1 + 1)..=den.1 {
                acc *= f2[at(num.0, y)];
            }
            acc
        };

        for i1 in 0..=n1 {
            for i2 in 0..=n2 {
                // --- F values ---
                if i1 >= 1 {
                    if i2 == 0 {
                        f1[at(i1, 0)] = i1 as f64; // Q(n1−1,0)/Q(n1,0) = n1
                    } else {
                        let mut denom = 1.0;
                        for t in &terms {
                            // L_1r = Q(i1−a, i2−a)/Q(i1−1, i2).
                            let l = if i1 - t.a < 0 || i2 - t.a < 0 {
                                0.0
                            } else {
                                ratio(&f1, &f2, (i1 - t.a, i2 - t.a), (i1 - 1, i2))
                            };
                            let dcoef = if t.bursty_index == usize::MAX || l == 0.0 {
                                1.0
                            } else {
                                d[t.bursty_index][at(i1 - t.a, i2 - t.a)]
                            };
                            denom += t.a_rho * l * dcoef;
                        }
                        f1[at(i1, i2)] = i1 as f64 / denom;
                    }
                }
                if i2 >= 1 {
                    if i1 == 0 {
                        f2[at(0, i2)] = i2 as f64;
                    } else {
                        let mut denom = 1.0;
                        for t in &terms {
                            // L_2r = Q(i1−a, i2−a)/Q(i1, i2−1).
                            let l = if i1 - t.a < 0 || i2 - t.a < 0 {
                                0.0
                            } else {
                                ratio(&f1, &f2, (i1 - t.a, i2 - t.a), (i1, i2 - 1))
                            };
                            let dcoef = if t.bursty_index == usize::MAX || l == 0.0 {
                                1.0
                            } else {
                                d[t.bursty_index][at(i1 - t.a, i2 - t.a)]
                            };
                            denom += t.a_rho * l * dcoef;
                        }
                        f2[at(i1, i2)] = i2 as f64 / denom;
                    }
                }
                // --- D values (corrected eq. 19) ---
                for t in &terms {
                    if t.bursty_index == usize::MAX {
                        continue;
                    }
                    if i1 - t.a < 0 || i2 - t.a < 0 {
                        d[t.bursty_index][at(i1, i2)] = 1.0;
                    } else {
                        let h = ratio(&f1, &f2, (i1 - t.a, i2 - t.a), (i1, i2));
                        d[t.bursty_index][at(i1, i2)] =
                            1.0 + t.beta_over_mu * h * d[t.bursty_index][at(i1 - t.a, i2 - t.a)];
                    }
                }
            }
        }

        Mva { dims, cols, f1, f2 }
    }

    /// `F_1(n1, n2) = Q(n1−1, n2)/Q(n1, n2)` (0 on the `n1 = 0` column).
    pub fn f1(&self, i1: i64, i2: i64) -> f64 {
        self.f1[i1 as usize * self.cols + i2 as usize]
    }

    /// `F_2(n1, n2) = Q(n1, n2−1)/Q(n1, n2)` (0 on the `n2 = 0` row).
    pub fn f2(&self, i1: i64, i2: i64) -> f64 {
        self.f2[i1 as usize * self.cols + i2 as usize]
    }
}

impl QRatio for Mva {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        assert!(
            num.0 <= den.0 && num.1 <= den.1,
            "MVA q_ratio only supports num <= den componentwise, got {num:?}/{den:?}"
        );
        assert!(
            den.0 <= self.dims.n1 as i64 && den.1 <= self.dims.n2 as i64,
            "q_ratio {den:?} outside solved lattice {}",
            self.dims
        );
        let mut acc = 1.0;
        for x in (num.0 + 1)..=den.0 {
            acc *= self.f1(x, den.1);
        }
        for y in (num.1 + 1)..=den.1 {
            acc *= self.f2(num.0, y);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::QLattice;
    use crate::brute::Brute;
    use crate::measures::measures;
    use xbar_numeric::ExtFloat;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn mixed_model(n1: u32, n2: u32) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0))
            .with(TrafficClass::poisson(0.15).with_bandwidth(2))
            .with(TrafficClass::bpp(0.1, 0.05, 2.0).with_bandwidth(3));
        Model::new(Dims::new(n1, n2), w).unwrap()
    }

    #[test]
    fn f_values_match_alg1_ratios() {
        let m = mixed_model(7, 6);
        let mva = Mva::solve(&m);
        let lat: QLattice<f64> = QLattice::solve(&m);
        for i1 in 0..=7i64 {
            for i2 in 0..=6i64 {
                if i1 >= 1 {
                    close(mva.f1(i1, i2), lat.q_ratio((i1 - 1, i2), (i1, i2)), 1e-10);
                }
                if i2 >= 1 {
                    close(mva.f2(i1, i2), lat.q_ratio((i1, i2 - 1), (i1, i2)), 1e-10);
                }
            }
        }
    }

    #[test]
    fn q_ratio_matches_alg1_for_arbitrary_pairs() {
        let m = mixed_model(6, 8);
        let mva = Mva::solve(&m);
        let lat: QLattice<f64> = QLattice::solve(&m);
        for num in [(0i64, 0i64), (1, 3), (4, 4), (6, 8), (2, 7), (-1, 4)] {
            let den = (6, 8);
            close(mva.q_ratio(num, den), lat.q_ratio(num, den), 1e-9);
        }
    }

    #[test]
    fn measures_via_mva_match_brute_force() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.4).with_weight(1.0))
            .with(TrafficClass::bpp(0.3, 0.1, 1.0).with_weight(0.2))
            .with(TrafficClass::bpp(0.8, -0.1, 2.0).with_bandwidth(2)); // S=8
        let m = Model::new(Dims::new(6, 5), w).unwrap();
        let mva = Mva::solve(&m);
        let got = measures(&m, &mva);
        let brute = Brute::new(&m);
        for r in 0..3 {
            close(got.classes[r].nonblocking, brute.nonblocking(r), 1e-9);
            close(got.classes[r].concurrency, brute.concurrency(r), 1e-9);
        }
        close(got.revenue, brute.revenue(), 1e-9);
    }

    #[test]
    fn boundary_f_values() {
        let m = mixed_model(5, 5);
        let mva = Mva::solve(&m);
        for n in 1..=5i64 {
            close(mva.f1(n, 0), n as f64, 1e-12);
            close(mva.f2(0, n), n as f64, 1e-12);
        }
        assert_eq!(mva.f1(0, 3), 0.0);
        assert_eq!(mva.f2(3, 0), 0.0);
    }

    #[test]
    fn stable_at_n256_against_extfloat_alg1() {
        // The whole point of Algorithm 2: no under/overflow at large N.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / 256.0))
            .with(TrafficClass::bpp(0.0012 / 256.0, 0.0012 / 256.0, 1.0));
        let m = Model::new(Dims::square(256), w).unwrap();
        let mva = Mva::solve(&m);
        let ext: QLattice<ExtFloat> = QLattice::solve(&m);
        let mva_meas = measures(&m, &mva);
        let ext_meas = measures(&m, &ext);
        for r in 0..2 {
            close(
                mva_meas.classes[r].blocking,
                ext_meas.classes[r].blocking,
                1e-9,
            );
            close(
                mva_meas.classes[r].concurrency,
                ext_meas.classes[r].concurrency,
                1e-9,
            );
        }
        close(mva_meas.revenue, ext_meas.revenue, 1e-9);
    }

    #[test]
    fn single_class_f1_closed_form_small() {
        // One Poisson class, a = 1. At (1,1): Q(1,1) = 1 + ρ, Q(0,1) = 1,
        // so F_1(1,1) = 1/(1+ρ).
        let rho = 0.37;
        let w = Workload::new().with(TrafficClass::poisson(rho));
        let m = Model::new(Dims::square(3), w).unwrap();
        let mva = Mva::solve(&m);
        close(mva.f1(1, 1), 1.0 / (1.0 + rho), 1e-12);
        // And F_2(1,1) symmetric.
        close(mva.f2(1, 1), 1.0 / (1.0 + rho), 1e-12);
    }

    #[test]
    #[should_panic(expected = "num <= den")]
    fn q_ratio_rejects_increasing_pairs() {
        let m = mixed_model(4, 4);
        let mva = Mva::solve(&m);
        let _ = mva.q_ratio((4, 4), (3, 3));
    }
}

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Product-form performance analysis of an `N1 × N2` **asynchronous
//! multi-rate crossbar** with bursty (BPP) traffic — a full reproduction of
//! Stirpe & Pinsky, *"Performance Analysis of an Asynchronous Multi-rate
//! Crossbar with Bursty Traffic"*, SIGCOMM 1992.
//!
//! # The model
//!
//! An unbuffered circuit-switched crossbar has `N1` inputs and `N2` outputs.
//! A class-`r` connection occupies `a_r` inputs and `a_r` outputs for a
//! holding time with mean `1/μ_r` (any distribution — the chain is
//! insensitive). Requests arrive with state-dependent rate
//! `λ_r(k_r) = α_r + β_r·k_r` per port-tuple; blocked requests are cleared.
//! The state `k = (k_1, …, k_R)` (connections in progress per class) is a
//! reversible Markov chain with product-form stationary distribution
//!
//! ```text
//! π(k) = Ψ(k)·Π_r Φ_r(k_r) / G(N),
//! Ψ(k) = N1!/(N1−k·A)! · N2!/(N2−k·A)!,
//! Φ_r(k) = Π_{l=1..k} λ_r(l−1)/(l·μ_r).
//! ```
//!
//! # What this crate provides
//!
//! * [`Model`] — switch geometry ([`Dims`]) plus a
//!   [`Workload`](xbar_traffic::Workload) of BPP classes.
//! * [`brute`] — exact enumeration of `Γ(N)` (the ground-truth oracle).
//! * [`alg1`] — the paper's Algorithm 1: an `O(N1·N2·R)` lattice recursion
//!   on `Q(N) = G(N)/(N1!·N2!)`, in three numeric backends (plain `f64`,
//!   the paper's §6 dynamically-scaled `f64`, and extended-range floats).
//! * [`alg2`] — the paper's Algorithm 2: mean-value analysis on the ratios
//!   `F_i(N) = Q(N−1_i)/Q(N)`, which never leave probability scale.
//! * [`alg3`] — our occupancy-space convolution (Kaufman–Roberts style):
//!   a third independent route to every measure that additionally exposes
//!   the occupancy distribution and per-class marginals.
//! * [`measures`] — blocking / non-blocking probability, per-class
//!   concurrency, call-level acceptance, revenue `W` and its gradients
//!   (closed form where the paper has one, forward differences where it
//!   doesn't — §4).
//! * [`solver`] — a front-end that picks the right algorithm/backend for
//!   the requested size, following the paper's own guidance (Algorithm 1
//!   for `N ≤ 32`, Algorithm 2 / extended-range beyond); its
//!   [`solver::resilient`] submodule adds a fault-tolerant pipeline that
//!   escalates through backends on failure and cross-checks the winner
//!   against an independent algorithm.
//! * [`approx`] — the classical reduced-load (Erlang fixed-point)
//!   approximation, as the cheap baseline the exact analysis improves on.
//! * [`transient`] — uniformisation-based transient analysis `π(t)` for
//!   enumerable switches (beyond the paper's stationary-only scope).
//! * [`policy`] — trunk-reservation admission control, turning §4's
//!   shadow-price diagnosis into an enforceable policy (numerical chain
//!   solve; no product form).
//! * [`sensitivity`] — full cross-class Jacobians `∂B_r/∂ρ_s`,
//!   `∂E_r/∂ρ_s`, `∂W/∂·` (the matrix version of §4's gradients),
//!   computed exactly from the sweep partials (finite differences kept
//!   as a test oracle).
//! * [`sweep`] — the incremental sweep solver: per-class leave-one-out
//!   partial convolutions on the diagonal ray, answering one-class
//!   parameter edits in `O(C²/a)` instead of a full lattice solve, plus
//!   exact §4 gradients.
//! * [`simd`] — runtime-dispatched multi-lane recombination kernels for
//!   the sweep hot loop (`strict` bit-for-bit / `fast` ≤ 1e-12 modes).
//! * [`fleet`] — batched solves of many heterogeneous models over the
//!   persistent worker pool, with work-stealing sharding and
//!   structure-of-arrays ray storage.
//!
//! # Quick example
//!
//! ```
//! use xbar_core::{Dims, Model, solver::{solve, Algorithm}};
//! use xbar_traffic::{TildeClass, Workload};
//!
//! // A 16×16 crossbar carrying one Poisson class and one peaky class.
//! let dims = Dims::square(16);
//! let workload = Workload::from_tilde(
//!     &[
//!         TildeClass::poisson(0.0012),
//!         TildeClass::bpp(0.0012, 0.0012, 1.0),
//!     ],
//!     dims.n2,
//! );
//! let model = Model::new(dims, workload).unwrap();
//! let sol = solve(&model, Algorithm::Auto).unwrap();
//! assert!(sol.blocking(0) > 0.0 && sol.blocking(0) < 0.01);
//! ```

pub mod alg1;
pub mod alg2;
pub mod alg3;
pub mod approx;
pub mod brute;
pub mod fleet;
pub mod measures;
pub mod model;
pub mod parallel;
pub mod policy;
pub mod sensitivity;
pub mod simd;
pub mod solver;
pub mod state;
pub mod sweep;
pub mod transient;

pub use fleet::{solve_fleet, sweep_many, FleetSweep};
pub use measures::{ClassMeasures, SwitchMeasures};
pub use model::{Dims, Model, ModelError};
pub use sensitivity::{sensitivity, sensitivity_from, Sensitivity};
pub use simd::{with_kernel_mode, KernelMode};
pub use solver::resilient::{solve_resilient, ResilientConfig, ResilientSolution, SolveReport};
pub use solver::{solve, solve_batch, solve_cached, Algorithm, Solution, SolveCache, SolveError};
pub use state::StateIter;
pub use sweep::{SweepGradients, SweepGrid, SweepSolution, SweepSolver};

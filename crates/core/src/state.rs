//! Enumeration of the state space
//! `Γ(N) = { k : 0 ≤ k·A ≤ min(N1, N2) }` (paper §2).
//!
//! Only the brute-force oracle and the diagnostics walk `Γ(N)` explicitly —
//! its size grows like `O(C^R)` — but having a careful iterator makes the
//! ground truth trustworthy and reusable (the simulator's state-occupancy
//! histograms are keyed by the same vectors).

use crate::model::Model;

/// Iterator over all states `k = (k_1, …, k_R)` with
/// `Σ_r k_r·a_r ≤ capacity` (odometer order, `k_R` fastest).
#[derive(Clone, Debug)]
pub struct StateIter {
    bandwidths: Vec<u32>,
    capacity: u32,
    /// Next state to yield; `None` once exhausted.
    next: Option<Vec<u32>>,
}

impl StateIter {
    /// Iterate `Γ` for an explicit capacity `min(N1,N2)` and bandwidth
    /// vector `A`.
    pub fn new(bandwidths: &[u32], capacity: u32) -> Self {
        StateIter {
            bandwidths: bandwidths.to_vec(),
            capacity,
            next: Some(vec![0; bandwidths.len()]),
        }
    }

    /// Iterate `Γ(N)` for a model.
    pub fn for_model(model: &Model) -> Self {
        let bw: Vec<u32> = model
            .workload()
            .classes()
            .iter()
            .map(|c| c.bandwidth)
            .collect();
        Self::new(&bw, model.dims().min_n())
    }

    fn used(&self, k: &[u32]) -> u32 {
        k.iter()
            .zip(&self.bandwidths)
            .map(|(&kr, &ar)| kr * ar)
            .sum()
    }

    /// Total weighted occupancy `k·A` of a state.
    pub fn occupancy(bandwidths: &[u32], k: &[u32]) -> u32 {
        k.iter().zip(bandwidths).map(|(&kr, &ar)| kr * ar).sum()
    }
}

impl Iterator for StateIter {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let current = self.next.take()?;
        // Advance: increment the last class whose bump stays within
        // capacity, zeroing everything after it.
        let mut succ = current.clone();
        let r_count = succ.len();
        let mut used = self.used(&succ);
        let mut pos = r_count;
        loop {
            if pos == 0 {
                self.next = None;
                break;
            }
            let r = pos - 1;
            // Try to bump class r.
            if used + self.bandwidths[r] <= self.capacity {
                succ[r] += 1;
                self.next = Some(succ);
                break;
            }
            // Reset class r to zero and carry left.
            used -= succ[r] * self.bandwidths[r];
            succ[r] = 0;
            pos -= 1;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(bw: &[u32], cap: u32) -> Vec<Vec<u32>> {
        StateIter::new(bw, cap).collect()
    }

    #[test]
    fn single_class_unit_bandwidth() {
        let states = collect(&[1], 3);
        assert_eq!(states, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn single_class_wide_bandwidth() {
        // a = 2, capacity 5 ⇒ k ∈ {0, 1, 2}.
        let states = collect(&[2], 5);
        assert_eq!(states, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn two_classes_mixed_bandwidth() {
        // a = (1, 2), capacity 3.
        let states = collect(&[1, 2], 3);
        let expected: Vec<Vec<u32>> = vec![
            vec![0, 0],
            vec![0, 1],
            vec![1, 0],
            vec![1, 1],
            vec![2, 0],
            vec![3, 0],
        ];
        assert_eq!(states, expected);
    }

    #[test]
    fn all_states_satisfy_capacity_and_none_missing() {
        let bw = [1u32, 2, 3];
        let cap = 7;
        let states = collect(&bw, cap);
        // Every yielded state fits.
        for k in &states {
            assert!(StateIter::occupancy(&bw, k) <= cap);
        }
        // Count against an independent triple loop.
        let mut expect = 0usize;
        for k1 in 0..=cap {
            for k2 in 0..=cap / 2 {
                for k3 in 0..=cap / 3 {
                    if k1 + 2 * k2 + 3 * k3 <= cap {
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(states.len(), expect);
        // No duplicates.
        let mut sorted = states.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), states.len());
    }

    #[test]
    fn zero_capacity_yields_only_origin() {
        assert_eq!(collect(&[1, 1], 0), vec![vec![0, 0]]);
    }

    #[test]
    fn state_count_matches_closed_form_single_class() {
        for cap in 0..20u32 {
            for a in 1..4u32 {
                assert_eq!(collect(&[a], cap).len() as u32, cap / a + 1);
            }
        }
    }
}

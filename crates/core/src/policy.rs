//! Trunk-reservation admission control — extending the paper's §4 revenue
//! analysis from *diagnosis* (shadow costs say which class is worth its
//! ports) to *control* (actually protecting the valuable class).
//!
//! Policy: class `r` is admitted only while
//! `min(N1,N2) − k·A ≥ a_r + t_r` — it must leave `t_r` spare connection
//! slots behind. `t ≡ 0` recovers the paper's model exactly. Reservation
//! breaks reversibility, so there is no product form: the chain is solved
//! numerically (uniformised power iteration over the enumerated state
//! space — small switches only, like [`crate::transient`]).

use xbar_numeric::permutation;

use crate::model::Model;
use crate::state::StateIter;
use crate::transient::MAX_STATES;

/// Stationary measures of the reserved switch.
#[derive(Clone, Debug)]
pub struct PolicyMeasures {
    /// Per-class call acceptance (accepted rate / offered rate).
    pub acceptance: Vec<f64>,
    /// Per-class call blocking `1 − acceptance`.
    pub blocking: Vec<f64>,
    /// Per-class concurrency `E_r`.
    pub concurrency: Vec<f64>,
    /// Revenue `Σ w_r·E_r`.
    pub revenue: f64,
    /// Power-iteration sweeps used.
    pub iterations: u32,
}

/// Solve the trunk-reservation chain for `model` with per-class spare-slot
/// thresholds `t` (one per class).
///
/// # Panics
/// Panics on threshold arity mismatch or if the state space exceeds
/// [`MAX_STATES`].
pub fn solve_policy(model: &Model, thresholds: &[u32]) -> PolicyMeasures {
    let dims = model.dims();
    let classes = model.workload().classes();
    assert_eq!(
        thresholds.len(),
        classes.len(),
        "one threshold per class required"
    );
    let bw: Vec<u32> = classes.iter().map(|c| c.bandwidth).collect();
    let cap = dims.min_n();

    let states: Vec<Vec<u32>> = StateIter::for_model(model).collect();
    assert!(states.len() <= MAX_STATES, "state space too large");
    let index: std::collections::HashMap<&[u32], usize> = states
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_slice(), i))
        .collect();

    // Transition rows under the policy.
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(states.len());
    let mut max_exit = 0.0f64;
    for k in &states {
        let ka = StateIter::occupancy(&bw, k);
        let mut row = Vec::new();
        let mut exit = 0.0;
        for (r, class) in classes.iter().enumerate() {
            let a = class.bandwidth;
            let admitted = cap - ka >= a + thresholds[r];
            if admitted && ka + a <= cap {
                let rate = permutation((dims.n1 - ka) as u64, a as u64)
                    * permutation((dims.n2 - ka) as u64, a as u64)
                    * class.lambda(k[r] as u64);
                if rate > 0.0 {
                    let mut up = k.clone();
                    up[r] += 1;
                    row.push((index[up.as_slice()], rate));
                    exit += rate;
                }
            }
            if k[r] > 0 {
                let rate = k[r] as f64 * class.mu;
                let mut down = k.clone();
                down[r] -= 1;
                row.push((index[down.as_slice()], rate));
                exit += rate;
            }
        }
        max_exit = max_exit.max(exit);
        rows.push(row);
    }

    // Uniformised power iteration to stationarity.
    let lambda_u = (max_exit * 1.05).max(1e-300);
    let mut pi = vec![1.0 / states.len() as f64; states.len()];
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let mut next = pi.clone(); // the I part scaled below
        for (i, row) in rows.iter().enumerate() {
            let exit: f64 = row.iter().map(|(_, r)| r).sum();
            let stay = exit / lambda_u;
            next[i] -= pi[i] * stay;
            for &(j, rate) in row {
                next[j] += pi[i] * rate / lambda_u;
            }
        }
        let delta: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
        pi = next;
        if delta < 1e-14 || iterations >= 2_000_000 {
            break;
        }
    }
    // Normalise away drift.
    let total: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= total;
    }

    // Measures.
    let r_count = classes.len();
    let mut offered = vec![0.0f64; r_count];
    let mut accepted = vec![0.0f64; r_count];
    let mut concurrency = vec![0.0f64; r_count];
    for (k, &p) in states.iter().zip(&pi) {
        let ka = StateIter::occupancy(&bw, k);
        for (r, class) in classes.iter().enumerate() {
            let a = class.bandwidth;
            let tuples =
                permutation(dims.n1 as u64, a as u64) * permutation(dims.n2 as u64, a as u64);
            let off = tuples * class.lambda(k[r] as u64);
            offered[r] += p * off;
            let admitted = cap - ka >= a + thresholds[r];
            if admitted {
                accepted[r] += p
                    * permutation((dims.n1 - ka) as u64, a as u64)
                    * permutation((dims.n2 - ka) as u64, a as u64)
                    * class.lambda(k[r] as u64);
            }
            concurrency[r] += p * k[r] as f64;
        }
    }
    let acceptance: Vec<f64> = offered
        .iter()
        .zip(&accepted)
        .map(|(o, a)| if *o > 0.0 { a / o } else { 1.0 })
        .collect();
    let revenue = classes
        .iter()
        .zip(&concurrency)
        .map(|(c, e)| c.weight * e)
        .sum();
    PolicyMeasures {
        blocking: acceptance.iter().map(|a| 1.0 - a).collect(),
        acceptance,
        concurrency,
        revenue,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::Brute;
    use crate::model::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn two_class_model() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.15).with_weight(1.0))
            .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1));
        Model::new(Dims::square(5), w).unwrap()
    }

    #[test]
    fn zero_thresholds_recover_the_product_form() {
        let m = two_class_model();
        let pol = solve_policy(&m, &[0, 0]);
        let brute = Brute::new(&m);
        for r in 0..2 {
            close(pol.concurrency[r], brute.concurrency(r), 1e-8);
        }
        close(pol.revenue, brute.revenue(), 1e-8);
        // Acceptance must equal the analytic call acceptance.
        let sol = crate::solver::solve(&m, crate::solver::Algorithm::Auto).unwrap();
        for r in 0..2 {
            close(pol.acceptance[r], sol.call_acceptance(r), 1e-8);
        }
    }

    #[test]
    fn reservation_protects_the_unthrottled_class() {
        let m = two_class_model();
        let base = solve_policy(&m, &[0, 0]);
        let reserved = solve_policy(&m, &[0, 2]);
        // The throttled class blocks (much) more…
        assert!(reserved.blocking[1] > base.blocking[1] + 0.01);
        // …and the protected class blocks less.
        assert!(
            reserved.blocking[0] < base.blocking[0],
            "{} !< {}",
            reserved.blocking[0],
            base.blocking[0]
        );
    }

    #[test]
    fn full_reservation_shuts_a_class_off() {
        let m = two_class_model();
        let cap = m.dims().min_n();
        let pol = solve_policy(&m, &[0, cap]);
        assert!(pol.acceptance[1] < 1e-9);
        assert!(pol.concurrency[1].abs() < 1e-10);
        // With class 2 effectively removed, class 1 behaves like a
        // single-class switch.
        let single = Model::new(
            m.dims(),
            Workload::new().with(m.workload().classes()[0].clone()),
        )
        .unwrap();
        let brute = Brute::new(&single);
        close(pol.concurrency[0], brute.concurrency(0), 1e-6);
    }

    #[test]
    fn reservation_can_raise_revenue_in_an_asymmetric_mix() {
        // A cheap but hungry class crowding out a valuable one: some
        // reservation against the cheap class must beat laissez-faire.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.25).with_weight(1.0))
            .with(TrafficClass::poisson(0.5).with_weight(0.01));
        let m = Model::new(Dims::square(4), w).unwrap();
        let base = solve_policy(&m, &[0, 0]).revenue;
        let best = (0..=4)
            .map(|t| solve_policy(&m, &[0, t]).revenue)
            .fold(f64::MIN, f64::max);
        assert!(best > base, "best {best} !> base {base}");
    }

    #[test]
    fn monotone_in_threshold() {
        let m = two_class_model();
        let mut prev_acc = 2.0;
        for t in 0..=3u32 {
            let pol = solve_policy(&m, &[0, t]);
            assert!(pol.acceptance[1] < prev_acc);
            prev_acc = pol.acceptance[1];
        }
    }

    #[test]
    #[should_panic(expected = "one threshold per class")]
    fn arity_mismatch_panics() {
        let m = two_class_model();
        let _ = solve_policy(&m, &[0]);
    }
}

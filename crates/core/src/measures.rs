//! Performance measures (paper §3–§4) evaluated from a solved lattice.
//!
//! Everything is expressed through ratios `Q(num)/Q(den)` (the [`QRatio`]
//! interface), which is why the §6 scaling discussion matters: the ratios
//! are probability-scale even when the `Q` values themselves are not.
//!
//! Formulas implemented (with the typo corrections derived in DESIGN.md):
//!
//! * non-blocking probability `B_r(N) = G(N−a_rI)/G(N)
//!   = Q(N−a_rI)/(P(N1,a_r)·P(N2,a_r)·Q(N))` (paper eq. 4);
//! * concurrency `E_r(N) = [Q(N−a_rI)/Q(N)]·{ρ_r + (β_r/μ_r)·E_r(N−a_rI)}`
//!   — the Poisson case is the `β = 0` specialisation
//!   `E_r = ρ_r·Q(N−a_rI)/Q(N)`;
//! * revenue / weighted throughput `W(N) = Σ_r w_r·E_r(N)` (paper §4);
//! * the closed-form revenue gradient for Poisson classes
//!   `∂W/∂ρ_r = P(N1,a_r)·P(N2,a_r)·B_r·(w_r − [W(N) − W(N−a_rI)])`,
//!   exact when no bursty class is present (`R2 = ∅`); the paper's
//!   `N1·N2·B_r(…)` is its `a_r = 1` case. `ΔW = W(N) − W(N−a_rI)` is the
//!   *shadow cost* of §4;
//! * per-class call-level acceptance ratio (ours, for simulator
//!   validation): accepted rate is `μ_r·E_r` by flow balance and offered
//!   rate is `P(N1,a_r)·P(N2,a_r)·(α_r + β_r·E_r)`, so
//!   `acceptance = μ_r·E_r / [P(N1,a_r)·P(N2,a_r)·(α_r + β_r·E_r)]`;
//!   for Poisson classes this equals `B_r` exactly.

use xbar_numeric::guard::{checked_nonneg, checked_prob, finite_or_err, GuardError};
use xbar_numeric::permutation;

use crate::alg1::QRatio;
use crate::model::{Dims, Model};

/// Measures for one traffic class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassMeasures {
    /// `B_r` — the paper's non-blocking probability (eq. 4).
    pub nonblocking: f64,
    /// `1 − B_r` — what the paper's figures and Table 2 actually plot.
    pub blocking: f64,
    /// `E_r` — mean number of class-`r` connections in progress.
    pub concurrency: f64,
    /// `μ_r·E_r` — class throughput (completed connections per unit time).
    pub throughput: f64,
    /// Call-level acceptance ratio (accepted/offered requests); equals
    /// `B_r` for Poisson classes. `1.0` (vacuous) if the class offers no
    /// traffic.
    pub call_acceptance: f64,
}

/// Measures for the whole switch.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchMeasures {
    /// The dims these measures were evaluated at (may be a sub-switch of
    /// the solved lattice, as in the shadow-cost terms).
    pub dims: Dims,
    /// Per-class measures, in workload order.
    pub classes: Vec<ClassMeasures>,
    /// Revenue `W = Σ_r w_r·E_r` (paper §4).
    pub revenue: f64,
    /// Unweighted total throughput `Σ_r μ_r·E_r` (the `γ_r = 1` revenue).
    pub total_throughput: f64,
}

impl SwitchMeasures {
    /// Run every measure through the numeric guards: probabilities must be
    /// finite and in `[0, 1]` (up to round-off slack), concurrencies and
    /// throughputs finite and non-negative, revenue finite. A violation
    /// identifies the quantity and value, so the resilient solver can
    /// classify the backend failure and escalate.
    pub fn validate(&self) -> Result<(), GuardError> {
        for (r, c) in self.classes.iter().enumerate() {
            checked_prob(&format!("nonblocking[{r}]"), c.nonblocking)?;
            checked_prob(&format!("blocking[{r}]"), c.blocking)?;
            checked_prob(&format!("call_acceptance[{r}]"), c.call_acceptance)?;
            checked_nonneg(&format!("concurrency[{r}]"), c.concurrency)?;
            checked_nonneg(&format!("throughput[{r}]"), c.throughput)?;
        }
        // Weights are user-chosen and may in principle be negative, so
        // revenue is only required to be finite.
        finite_or_err("revenue", self.revenue)?;
        checked_nonneg("total_throughput", self.total_throughput)?;
        Ok(())
    }
}

/// Evaluate all measures at the lattice's own dims.
pub fn measures(model: &Model, lat: &impl QRatio) -> SwitchMeasures {
    measures_at(model, lat, lat.dims())
}

/// Evaluate all measures at a sub-switch `dims ≤ lat.dims()` (same per-set
/// traffic parameters — the convention of the paper's `W(N − a_r·I)`
/// shadow-cost terms).
pub fn measures_at(model: &Model, lat: &impl QRatio, dims: Dims) -> SwitchMeasures {
    let full = lat.dims();
    assert!(
        dims.n1 <= full.n1 && dims.n2 <= full.n2,
        "measures_at {dims} outside solved lattice {full}"
    );
    let classes = model.workload().classes();
    let mut out = Vec::with_capacity(classes.len());
    let mut revenue = 0.0;
    let mut total_throughput = 0.0;
    for class in classes {
        let a = class.bandwidth as i64;
        let target = (dims.n1 as i64, dims.n2 as i64);
        let h = lat.q_ratio((target.0 - a, target.1 - a), target);
        let pp = permutation(dims.n1 as u64, class.bandwidth as u64)
            * permutation(dims.n2 as u64, class.bandwidth as u64);
        let nonblocking = if pp > 0.0 { h / pp } else { 0.0 };

        let concurrency = concurrency_at(lat, target, a, class.rho(), class.beta / class.mu);
        let throughput = class.mu * concurrency;
        let offered = pp * (class.alpha + class.beta * concurrency);
        let call_acceptance = if offered > 0.0 {
            throughput / offered
        } else {
            1.0
        };

        revenue += class.weight * concurrency;
        total_throughput += throughput;
        out.push(ClassMeasures {
            nonblocking,
            blocking: 1.0 - nonblocking,
            concurrency,
            throughput,
            call_acceptance,
        });
    }
    SwitchMeasures {
        dims,
        classes: out,
        revenue,
        total_throughput,
    }
}

/// `E_r` via the diagonal recursion
/// `E_r(m) = [Q(m−aI)/Q(m)]·{ρ + (β/μ)·E_r(m−aI)}`, iterated up the chain
/// `m = target − t·a·I` from the boundary (where `E = 0`) to `target`.
fn concurrency_at(
    lat: &impl QRatio,
    target: (i64, i64),
    a: i64,
    rho: f64,
    beta_over_mu: f64,
) -> f64 {
    let tmax = (target.0.min(target.1)) / a;
    let mut e = 0.0;
    for t in (0..=tmax).rev() {
        let m = (target.0 - t * a, target.1 - t * a);
        let h = lat.q_ratio((m.0 - a, m.1 - a), m);
        e = h * (rho + beta_over_mu * e);
    }
    e
}

/// Closed-form revenue gradient `∂W/∂ρ_r` (paper §4):
/// `P(N1,a_r)·P(N2,a_r)·B_r·(w_r − ΔW)` with shadow cost
/// `ΔW = W(N) − W(N − a_r·I)`.
///
/// Exact when the workload has no bursty classes (`R2 = ∅`); with bursty
/// classes present it is the same first-order expression the paper
/// tabulates (Table 2) but no longer an exact derivative — cross-check with
/// a finite difference via the solver when that matters.
pub fn revenue_gradient_rho_closed(model: &Model, lat: &impl QRatio, r: usize) -> f64 {
    let dims = lat.dims();
    let class = &model.workload().classes()[r];
    let a = class.bandwidth;
    let here = measures(model, lat);
    let w_sub = match dims.shrink(a) {
        Some(sub) => measures_at(model, lat, sub).revenue,
        None => 0.0,
    };
    let b_r = here.classes[r].nonblocking;
    let pp = permutation(dims.n1 as u64, a as u64) * permutation(dims.n2 as u64, a as u64);
    pp * b_r * (class.weight - (here.revenue - w_sub))
}

/// The shadow cost `ΔW(N) = W(N) − W(N − a_r·I)` of accepting one class-`r`
/// connection (paper §4's "economic interpretation").
pub fn shadow_cost(model: &Model, lat: &impl QRatio, r: usize) -> f64 {
    let dims = lat.dims();
    let a = model.workload().classes()[r].bandwidth;
    let here = measures(model, lat).revenue;
    let sub = match dims.shrink(a) {
        Some(s) => measures_at(model, lat, s).revenue,
        None => 0.0,
    };
    here - sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::QLattice;
    use crate::brute::Brute;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn solve_f64(m: &Model) -> QLattice<f64> {
        QLattice::solve(m)
    }

    #[test]
    fn measures_match_brute_force_definitions() {
        // Mixed workload incl. multi-rate and Bernoulli classes.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.4).with_weight(1.0))
            .with(TrafficClass::bpp(0.3, 0.1, 1.0).with_weight(0.2))
            .with(
                TrafficClass::poisson(0.2)
                    .with_bandwidth(2)
                    .with_weight(0.5),
            )
            .with(
                TrafficClass::bpp(0.8, -0.1, 2.0) // S = 8 Bernoulli
                    .with_bandwidth(2)
                    .with_weight(0.7),
            );
        let m = Model::new(Dims::new(7, 6), w).unwrap();
        let lat = solve_f64(&m);
        let got = measures(&m, &lat);
        let brute = Brute::new(&m);
        for r in 0..4 {
            close(got.classes[r].nonblocking, brute.nonblocking(r), 1e-10);
            close(got.classes[r].concurrency, brute.concurrency(r), 1e-10);
        }
        close(got.revenue, brute.revenue(), 1e-10);
    }

    #[test]
    fn poisson_concurrency_reduces_to_simple_form() {
        // For β = 0: E = ρ·Q(N−aI)/Q(N) — check against the chain version.
        let w = Workload::new().with(TrafficClass::poisson(0.5).with_bandwidth(2));
        let m = Model::new(Dims::square(9), w).unwrap();
        let lat = solve_f64(&m);
        let got = measures(&m, &lat).classes[0].concurrency;
        let direct = 0.5 * lat.q_ratio((7, 7), (9, 9));
        close(got, direct, 1e-13);
    }

    #[test]
    fn call_acceptance_equals_nonblocking_for_poisson() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.4))
            .with(TrafficClass::poisson(0.2).with_bandwidth(2));
        let m = Model::new(Dims::square(8), w).unwrap();
        let lat = solve_f64(&m);
        let got = measures(&m, &lat);
        for r in 0..2 {
            close(
                got.classes[r].call_acceptance,
                got.classes[r].nonblocking,
                1e-12,
            );
        }
    }

    #[test]
    fn call_acceptance_differs_for_bursty_classes() {
        // Peaky arrivals cluster in busy states, so the call-level
        // acceptance is *worse* than the time-average B_r.
        let w = Workload::new().with(TrafficClass::bpp(0.3, 0.25, 1.0));
        let m = Model::new(Dims::square(4), w).unwrap();
        let lat = solve_f64(&m);
        let got = measures(&m, &lat).classes[0];
        assert!(
            got.call_acceptance < got.nonblocking,
            "{} !< {}",
            got.call_acceptance,
            got.nonblocking
        );
    }

    #[test]
    fn table2_n1_and_n2_anchors() {
        // Paper Table 2, first parameter set, N = 1 and N = 2 rows.
        let n2 = 1u32;
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / n2 as f64).with_weight(1.0))
            .with(
                TrafficClass::bpp(0.0012 / n2 as f64, 0.0012 / n2 as f64, 1.0).with_weight(0.0001),
            );
        let m = Model::new(Dims::square(1), w).unwrap();
        let lat = solve_f64(&m);
        let got = measures(&m, &lat);
        close(got.classes[0].blocking, 0.00239425, 1e-5);
        close(got.revenue, 0.00119725, 1e-5);
        // The table prints two truncated decimals: 0.9964… → "0.99".
        let grad = revenue_gradient_rho_closed(&m, &lat, 0);
        assert!((grad - 0.99).abs() < 0.01, "{grad}");

        let n2 = 2u32;
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / n2 as f64).with_weight(1.0))
            .with(
                TrafficClass::bpp(0.0012 / n2 as f64, 0.0012 / n2 as f64, 1.0).with_weight(0.0001),
            );
        let m = Model::new(Dims::square(2), w).unwrap();
        let lat = solve_f64(&m);
        let got = measures(&m, &lat);
        // Exact value of the stated model: 0.00358637. The paper prints
        // 0.00358566, which is the β̃ = 0 value — its Table 2 blocking
        // column shows no β effect at N = 2 (see DESIGN.md §"Table 2
        // blocking column"): we reproduce the model, not the bug.
        close(got.classes[0].blocking, 0.00358637, 1e-5);
        close(got.revenue, 0.00239163, 1e-4);
        let grad = revenue_gradient_rho_closed(&m, &lat, 0);
        assert!((grad - 3.97).abs() < 0.01, "{grad}");
    }

    #[test]
    fn shadow_cost_is_positive_and_bounded_by_weight_at_light_load() {
        let w = Workload::new().with(TrafficClass::poisson(0.01));
        let m = Model::new(Dims::square(8), w).unwrap();
        let lat = solve_f64(&m);
        let dc = shadow_cost(&m, &lat, 0);
        assert!(dc > 0.0 && dc < 1.0, "{dc}");
    }

    #[test]
    fn gradient_positive_when_class_worth_more_than_shadow_cost() {
        // Single light Poisson class, w = 1: increasing its load must
        // increase revenue (ΔW < w).
        let w = Workload::new().with(TrafficClass::poisson(0.01));
        let m = Model::new(Dims::square(6), w).unwrap();
        let lat = solve_f64(&m);
        assert!(revenue_gradient_rho_closed(&m, &lat, 0) > 0.0);
    }

    #[test]
    fn closed_form_gradient_matches_finite_difference_when_r2_empty() {
        // The paper's exactness claim for R2 = ∅.
        let mk = |rho1: f64| {
            let w = Workload::new()
                .with(TrafficClass::poisson(rho1).with_weight(1.0))
                .with(
                    TrafficClass::poisson(0.05)
                        .with_bandwidth(2)
                        .with_weight(0.3),
                );
            Model::new(Dims::square(6), w).unwrap()
        };
        let m = mk(0.08);
        let lat = solve_f64(&m);
        let closed = revenue_gradient_rho_closed(&m, &lat, 0);
        let fd = xbar_numeric::central_diff(
            |x| {
                let m2 = m.with_rho(0, x).unwrap();
                let lat2 = solve_f64(&m2);
                measures(&m2, &lat2).revenue
            },
            0.08,
        );
        close(closed, fd, 1e-6);
    }

    #[test]
    fn measures_at_sub_switch_match_directly_solved_sub_model() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.1, 1.0));
        let m = Model::new(Dims::square(8), w.clone()).unwrap();
        let lat = solve_f64(&m);
        let sub = measures_at(&m, &lat, Dims::square(5));
        let m5 = Model::new(Dims::square(5), w).unwrap();
        let lat5 = solve_f64(&m5);
        let direct = measures(&m5, &lat5);
        close(sub.revenue, direct.revenue, 1e-12);
        for r in 0..2 {
            close(
                sub.classes[r].nonblocking,
                direct.classes[r].nonblocking,
                1e-12,
            );
            close(
                sub.classes[r].concurrency,
                direct.classes[r].concurrency,
                1e-12,
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside solved lattice")]
    fn measures_at_rejects_larger_dims() {
        let w = Workload::new().with(TrafficClass::poisson(0.1));
        let m = Model::new(Dims::square(3), w).unwrap();
        let lat = solve_f64(&m);
        let _ = measures_at(&m, &lat, Dims::square(4));
    }
}

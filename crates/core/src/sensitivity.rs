//! Cross-class sensitivity analysis — the full matrix version of §4's
//! single-gradient story.
//!
//! §4 computes `∂W/∂ρ_r`; an operator tuning a real mix also wants to know
//! how pushing one class's load moves *every other class's* blocking and
//! concurrency. This module assembles the Jacobians
//!
//! ```text
//! J_B[r][s] = ∂B_r/∂ρ_s        J_E[r][s] = ∂E_r/∂ρ_s
//! ```
//!
//! **exactly**, by differentiating the product form itself: one
//! [`SweepSolver`] precompute per model, then each column `s` falls out
//! of the cached leave-one-out partials via
//! [`SweepSolver::gradients`] — no re-solves, no step-size error.
//!
//! The previous finite-difference assembly (two full solves per column,
//! central differences on re-solved models) is kept as
//! [`sensitivity_fd`]: it is the test oracle the exact path is verified
//! against (unit tests here, a proptest battery in
//! `tests/differential.rs`), and a fallback for backends the sweep
//! solver does not model.

use xbar_numeric::central_diff;

use crate::model::Model;
use crate::solver::{solve, Algorithm, SolveError};
use crate::sweep::SweepSolver;

/// The assembled sensitivity matrices (rows = affected class, columns =
/// perturbed class).
#[derive(Clone, Debug)]
pub struct Sensitivity {
    /// `∂B_r/∂ρ_s` (non-blocking probability w.r.t. per-set load).
    pub nonblocking_by_rho: Vec<Vec<f64>>,
    /// `∂E_r/∂ρ_s`.
    pub concurrency_by_rho: Vec<Vec<f64>>,
    /// `∂W/∂ρ_s` (one row — revenue is a scalar).
    pub revenue_by_rho: Vec<f64>,
    /// `∂W/∂(β_s/μ_s)` per class (`0` entries are still computed — the
    /// derivative exists for Poisson classes too; it reports how revenue
    /// would move if the class *became* bursty).
    pub revenue_by_beta: Vec<f64>,
}

/// Assemble all sensitivities for `model` exactly from the sweep
/// partials — one `O(R²·C²)` precompute and `R` gradient passes, zero
/// full solves (the old finite-difference assembly paid `2R·(2R + 2)`
/// of them).
///
/// `algorithm` picks the numeric backend of the partials, with the same
/// policy as [`SweepSolver::new`].
pub fn sensitivity(model: &Model, algorithm: Algorithm) -> Result<Sensitivity, SolveError> {
    let sweep = SweepSolver::new(model, algorithm)?;
    Ok(sensitivity_from(&sweep))
}

/// Assemble the sensitivity matrices from an already-built
/// [`SweepSolver`], paying only the `R` gradient recombination passes.
///
/// This is the online-repricing entry point: an admission engine that
/// holds one solver per anchor can refresh its shadow prices per event
/// batch at recombination cost, and the result is bit-identical to
/// [`sensitivity`] on the solver's model (the precompute is the only
/// work skipped).
pub fn sensitivity_from(sweep: &SweepSolver) -> Sensitivity {
    let r_count = sweep.model().num_classes();
    let mut nonblocking_by_rho = vec![vec![0.0; r_count]; r_count];
    let mut concurrency_by_rho = vec![vec![0.0; r_count]; r_count];
    let mut revenue_by_rho = vec![0.0; r_count];
    let mut revenue_by_beta = vec![0.0; r_count];
    for s in 0..r_count {
        let g = sweep.gradients(s);
        for r in 0..r_count {
            nonblocking_by_rho[r][s] = g.nonblocking_by_rho[r];
            concurrency_by_rho[r][s] = g.concurrency_by_rho[r];
        }
        revenue_by_rho[s] = g.revenue_by_rho;
        revenue_by_beta[s] = g.revenue_by_beta;
    }
    Sensitivity {
        nonblocking_by_rho,
        concurrency_by_rho,
        revenue_by_rho,
        revenue_by_beta,
    }
}

/// The finite-difference oracle: the original central-difference
/// assembly on re-solved models (two solves per column and output).
/// Slower and step-size-limited — kept to cross-check [`sensitivity`].
pub fn sensitivity_fd(model: &Model, algorithm: Algorithm) -> Result<Sensitivity, SolveError> {
    let r_count = model.num_classes();
    let mut nonblocking_by_rho = vec![vec![0.0; r_count]; r_count];
    let mut concurrency_by_rho = vec![vec![0.0; r_count]; r_count];
    let mut revenue_by_rho = vec![0.0; r_count];
    let mut revenue_by_beta = vec![0.0; r_count];

    for s in 0..r_count {
        let rho0 = model.workload().classes()[s].rho();
        // One pass per output quantity keeps the code simple; the solves
        // are memoised implicitly by the closure capturing nothing mutable.
        for r in 0..r_count {
            nonblocking_by_rho[r][s] = diff(model, algorithm, s, rho0, |sol| sol.nonblocking(r))?;
            concurrency_by_rho[r][s] = diff(model, algorithm, s, rho0, |sol| sol.concurrency(r))?;
        }
        revenue_by_rho[s] = diff(model, algorithm, s, rho0, |sol| sol.revenue())?;

        let class = &model.workload().classes()[s];
        let x0 = class.beta / class.mu;
        let mut err = None;
        revenue_by_beta[s] = central_diff(
            |x| match model
                .with_beta_over_mu(s, x)
                .map_err(SolveError::from)
                .and_then(|m| solve(&m, algorithm))
            {
                Ok(sol) => sol.revenue(),
                Err(e) => {
                    err.get_or_insert(e);
                    f64::NAN
                }
            },
            x0,
        );
        if let Some(e) = err {
            return Err(e);
        }
    }

    Ok(Sensitivity {
        nonblocking_by_rho,
        concurrency_by_rho,
        revenue_by_rho,
        revenue_by_beta,
    })
}

fn diff<F: Fn(&crate::solver::Solution) -> f64>(
    model: &Model,
    algorithm: Algorithm,
    s: usize,
    rho0: f64,
    read: F,
) -> Result<f64, SolveError> {
    let mut err = None;
    let d = central_diff(
        |x| match model
            .with_rho(s, x)
            .map_err(SolveError::from)
            .and_then(|m| solve(&m, algorithm))
        {
            Ok(sol) => read(&sol),
            Err(e) => {
                err.get_or_insert(e);
                f64::NAN
            }
        },
        rho0,
    );
    match err {
        Some(e) => Err(e),
        None => Ok(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dims;
    use crate::solver::Algorithm;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-9);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn model() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.08).with_weight(1.0))
            .with(
                TrafficClass::poisson(0.03)
                    .with_bandwidth(2)
                    .with_weight(0.4),
            );
        Model::new(Dims::square(8), w).unwrap()
    }

    #[test]
    fn every_load_hurts_every_availability() {
        // All entries of ∂B_r/∂ρ_s are negative: any extra load anywhere
        // reduces everyone's availability.
        let sens = sensitivity(&model(), Algorithm::Alg1F64).unwrap();
        for row in &sens.nonblocking_by_rho {
            for &v in row {
                assert!(v < 0.0, "{row:?}");
            }
        }
    }

    #[test]
    fn own_concurrency_rises_with_own_load() {
        let sens = sensitivity(&model(), Algorithm::Alg1F64).unwrap();
        for r in 0..2 {
            assert!(sens.concurrency_by_rho[r][r] > 0.0);
        }
        // Cross terms are negative: class s's load displaces class r.
        assert!(sens.concurrency_by_rho[0][1] < 0.0);
        assert!(sens.concurrency_by_rho[1][0] < 0.0);
    }

    #[test]
    fn revenue_row_matches_solution_gradient() {
        // For a pure-Poisson workload the closed form (paper §4) is exact,
        // so the exact sweep-based row must match it.
        let m = model();
        let sens = sensitivity(&m, Algorithm::Alg1F64).unwrap();
        let sol = solve(&m, Algorithm::Alg1F64).unwrap();
        for s in 0..2 {
            close(sens.revenue_by_rho[s], sol.revenue_gradient_rho(s), 1e-4);
        }
    }

    #[test]
    fn beta_column_is_negative_for_crowded_switches() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1).with_weight(1.0))
            .with(TrafficClass::bpp(0.05, 0.2, 1.0).with_weight(0.01));
        let m = Model::new(Dims::square(6), w).unwrap();
        let sens = sensitivity(&m, Algorithm::Alg1F64).unwrap();
        assert!(sens.revenue_by_beta[1] < 0.0, "{:?}", sens.revenue_by_beta);
    }

    #[test]
    fn exact_matrices_match_finite_difference_oracle() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.12).with_weight(1.0))
            .with(TrafficClass::bpp(0.06, 0.15, 1.0).with_weight(0.3))
            .with(
                TrafficClass::bpp(0.3, -0.03, 0.7)
                    .with_bandwidth(2)
                    .with_weight(0.8),
            );
        let m = Model::new(Dims::square(10), w).unwrap();
        let exact = sensitivity(&m, Algorithm::Alg1Ext).unwrap();
        let fd = sensitivity_fd(&m, Algorithm::Alg1Ext).unwrap();
        for s in 0..3 {
            for r in 0..3 {
                close(
                    exact.nonblocking_by_rho[r][s],
                    fd.nonblocking_by_rho[r][s],
                    1e-6,
                );
                close(
                    exact.concurrency_by_rho[r][s],
                    fd.concurrency_by_rho[r][s],
                    1e-6,
                );
            }
            close(exact.revenue_by_rho[s], fd.revenue_by_rho[s], 1e-6);
            close(exact.revenue_by_beta[s], fd.revenue_by_beta[s], 1e-6);
        }
    }

    #[test]
    fn sensitivity_from_cached_solver_is_bit_identical_and_precompute_free() {
        let m = model();
        let sweep = SweepSolver::new(&m, Algorithm::Auto).unwrap();
        let fresh = sensitivity(&m, Algorithm::Auto).unwrap();

        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        let cached = sensitivity_from(&sweep);
        let snap = reg.snapshot();
        assert!(snap.histogram("span.sweep.precompute").is_none());
        assert_eq!(snap.counter("sweep.gradients"), Some(2));

        for s in 0..2 {
            for r in 0..2 {
                assert_eq!(
                    cached.nonblocking_by_rho[r][s].to_bits(),
                    fresh.nonblocking_by_rho[r][s].to_bits()
                );
                assert_eq!(
                    cached.concurrency_by_rho[r][s].to_bits(),
                    fresh.concurrency_by_rho[r][s].to_bits()
                );
            }
            assert_eq!(
                cached.revenue_by_rho[s].to_bits(),
                fresh.revenue_by_rho[s].to_bits()
            );
            assert_eq!(
                cached.revenue_by_beta[s].to_bits(),
                fresh.revenue_by_beta[s].to_bits()
            );
        }
    }

    #[test]
    fn exact_path_performs_no_full_solves() {
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        sensitivity(&model(), Algorithm::Auto).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("solver.solve"), None, "exact path re-solved");
        assert_eq!(snap.counter("sweep.gradients"), Some(2));
    }
}

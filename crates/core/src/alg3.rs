//! **Algorithm 3 (ours)** — occupancy-space convolution, a
//! Kaufman–Roberts-style third route to the same measures.
//!
//! The product form couples classes only through the total occupancy
//! `m = k·A` (both `Ψ` and the state-space constraint depend on `k`
//! through `m` alone), so the normalisation constant factors as
//!
//! ```text
//! G(N) = Σ_{m=0}^{C} Ψ_N(m)·S(m),      C = min(N1, N2),
//! S(m)  = Σ_{k·A = m} Π_r Φ_r(k_r)     (a convolution over classes),
//! ```
//!
//! where `S` is *geometry-free*: one `O(R·C²)` convolution serves `G` at
//! **every** sub-switch `(n1, n2) ≤ N` in `O(C)` each — which is exactly
//! the access pattern of the measures (`G(N − t·a_r·I)` chains). Beyond
//! being an independent cross-check on Algorithms 1–2, the per-class
//! factors give two quantities the lattice recursions do not expose:
//!
//! * the stationary **occupancy distribution** `P(k·A = m)`, and
//! * the full **per-class marginal** `P(k_r = j)`, via the leave-one-out
//!   convolutions `S_{−r}`.
//!
//! Complexity: `O(R·C²)` time (vs. `O(N1·N2·R)` for Algorithm 1 — cheaper
//! whenever the switch is far from square), `O(R·C)` space. Extended-range
//! arithmetic throughout: the `Φ` tails underflow `f64` long before
//! `C = 256` at the paper's loads.

use xbar_numeric::{ln_factorial, ExtFloat};

use crate::alg1::QRatio;
use crate::model::{Dims, Model};

/// Solved occupancy-space convolution.
#[derive(Clone, Debug)]
pub struct Convolution {
    dims: Dims,
    /// Per-class bandwidths.
    bandwidths: Vec<u32>,
    /// `Φ_r(j)` for `j·a_r ≤ C`, per class.
    phi: Vec<Vec<ExtFloat>>,
    /// Full convolution `S(0..=C)`.
    s: Vec<ExtFloat>,
    /// Leave-one-out convolutions `S_{−r}(0..=C)`, per class.
    s_minus: Vec<Vec<ExtFloat>>,
}

/// Convolve `acc` with the sparse series `{j·a ↦ phi[j]}`, truncated at
/// `C = acc.len() − 1`.
fn convolve(acc: &[ExtFloat], phi: &[ExtFloat], a: usize) -> Vec<ExtFloat> {
    let c = acc.len() - 1;
    let mut out = vec![ExtFloat::ZERO; c + 1];
    for (j, &w) in phi.iter().enumerate() {
        let shift = j * a;
        if shift > c {
            break;
        }
        for m in shift..=c {
            let v = acc[m - shift];
            if !v.is_zero() {
                out[m] += v * w;
            }
        }
    }
    out
}

impl Convolution {
    /// Run the convolution for `model`.
    pub fn solve(model: &Model) -> Self {
        let dims = model.dims();
        let c = dims.min_n() as usize;
        let classes = model.workload().classes();

        // Per-class Φ series.
        let mut phi: Vec<Vec<ExtFloat>> = Vec::with_capacity(classes.len());
        for class in classes {
            let a = class.bandwidth as usize;
            let jmax = c / a;
            let mut series = Vec::with_capacity(jmax + 1);
            let mut w = ExtFloat::ONE;
            series.push(w);
            for j in 1..=jmax {
                w *= ExtFloat::from_f64(class.lambda((j - 1) as u64) / (j as f64 * class.mu));
                series.push(w);
            }
            phi.push(series);
        }

        // Full and leave-one-out convolutions. R is small (a handful of
        // classes), so the O(R²·C²) leave-one-out recomputation is cheap
        // and keeps the code obviously correct.
        let unit = {
            let mut u = vec![ExtFloat::ZERO; c + 1];
            u[0] = ExtFloat::ONE;
            u
        };
        let mut s = unit.clone();
        for (r, series) in phi.iter().enumerate() {
            s = convolve(&s, series, classes[r].bandwidth as usize);
        }
        let mut s_minus = Vec::with_capacity(classes.len());
        for skip in 0..classes.len() {
            let mut acc = unit.clone();
            for (r, series) in phi.iter().enumerate() {
                if r != skip {
                    acc = convolve(&acc, series, classes[r].bandwidth as usize);
                }
            }
            s_minus.push(acc);
        }

        Convolution {
            dims,
            bandwidths: classes.iter().map(|cl| cl.bandwidth).collect(),
            phi,
            s,
            s_minus,
        }
    }

    /// `Ψ_{(n1,n2)}(m) = P(n1, m)·P(n2, m)` as an extended float.
    fn psi(n1: i64, n2: i64, m: usize) -> ExtFloat {
        // ln P(n, m) = ln n! − ln (n−m)!.
        let m = m as i64;
        if m > n1 || m > n2 {
            return ExtFloat::ZERO;
        }
        let ln = ln_factorial(n1 as u64) - ln_factorial((n1 - m) as u64) + ln_factorial(n2 as u64)
            - ln_factorial((n2 - m) as u64);
        ExtFloat::exp(ln)
    }

    /// `G(n1, n2)` for any sub-switch of the solved dims.
    pub fn g_at(&self, n1: i64, n2: i64) -> ExtFloat {
        assert!(
            n1 <= self.dims.n1 as i64 && n2 <= self.dims.n2 as i64,
            "G({n1},{n2}) outside solved dims {}",
            self.dims
        );
        if n1 < 0 || n2 < 0 {
            return ExtFloat::ZERO;
        }
        let cap = (n1.min(n2) as usize).min(self.s.len() - 1);
        let mut acc = ExtFloat::ZERO;
        for m in 0..=cap {
            if !self.s[m].is_zero() {
                acc += Self::psi(n1, n2, m) * self.s[m];
            }
        }
        acc
    }

    /// Stationary distribution of the total occupancy `k·A` at the full
    /// dims (normalised).
    pub fn occupancy_distribution(&self) -> Vec<f64> {
        let (n1, n2) = (self.dims.n1 as i64, self.dims.n2 as i64);
        let g = self.g_at(n1, n2);
        (0..self.s.len())
            .map(|m| (Self::psi(n1, n2, m) * self.s[m]).ratio(g))
            .collect()
    }

    /// Marginal distribution `P(k_r = j)` of class `r` at the full dims.
    pub fn class_marginal(&self, r: usize) -> Vec<f64> {
        let (n1, n2) = (self.dims.n1 as i64, self.dims.n2 as i64);
        let a = self.bandwidths[r] as usize;
        let g = self.g_at(n1, n2);
        let c = self.s.len() - 1;
        self.phi[r]
            .iter()
            .enumerate()
            .map(|(j, &phi_j)| {
                // P(k_r = j) = Σ_m Ψ(m)·Φ_r(j)·S_{−r}(m − j·a) / G.
                let mut acc = ExtFloat::ZERO;
                for m in (j * a)..=c {
                    let rest = self.s_minus[r][m - j * a];
                    if !rest.is_zero() {
                        acc += Self::psi(n1, n2, m) * rest;
                    }
                }
                (acc * phi_j).ratio(g)
            })
            .collect()
    }

    /// Mean of the class-`r` marginal — an independent route to `E_r`.
    pub fn concurrency(&self, r: usize) -> f64 {
        self.class_marginal(r)
            .iter()
            .enumerate()
            .map(|(j, p)| j as f64 * p)
            .sum()
    }
}

impl QRatio for Convolution {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        // Q(num)/Q(den) = [G(num)/G(den)]·(den1!·den2!)/(num1!·num2!).
        let ln_fact = ln_factorial(den.0 as u64) + ln_factorial(den.1 as u64)
            - ln_factorial(num.0 as u64)
            - ln_factorial(num.1 as u64);
        (self.g_at(num.0, num.1) * ExtFloat::exp(ln_fact)).ratio(self.g_at(den.0, den.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::QLattice;
    use crate::brute::Brute;
    use crate::measures::measures;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn mixed_model(n1: u32, n2: u32) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3).with_weight(1.0))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0).with_weight(0.5))
            .with(
                TrafficClass::poisson(0.15)
                    .with_bandwidth(2)
                    .with_weight(0.3),
            )
            .with(
                TrafficClass::bpp(0.8, -0.1, 2.0)
                    .with_bandwidth(2)
                    .with_weight(0.1),
            );
        Model::new(Dims::new(n1, n2), w).unwrap()
    }

    #[test]
    fn g_matches_brute_force_at_every_sub_switch() {
        let m = mixed_model(6, 5);
        let conv = Convolution::solve(&m);
        let brute = Brute::new(&m);
        for n1 in 0..=6i64 {
            for n2 in 0..=5i64 {
                let got = conv.g_at(n1, n2);
                let want = brute.g(Dims::new(n1 as u32, n2 as u32));
                close(got.ratio(want), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn measures_via_convolution_match_brute_force() {
        let m = mixed_model(7, 6);
        let conv = Convolution::solve(&m);
        let got = measures(&m, &conv);
        let brute = Brute::new(&m);
        for r in 0..4 {
            close(got.classes[r].nonblocking, brute.nonblocking(r), 1e-9);
            close(got.classes[r].concurrency, brute.concurrency(r), 1e-9);
        }
        close(got.revenue, brute.revenue(), 1e-9);
    }

    #[test]
    fn q_ratio_matches_algorithm1() {
        let m = mixed_model(6, 8);
        let conv = Convolution::solve(&m);
        let lat: QLattice<f64> = QLattice::solve(&m);
        for num in [(0i64, 0i64), (2, 3), (4, 6), (6, 8), (5, 2)] {
            close(conv.q_ratio(num, (6, 8)), lat.q_ratio(num, (6, 8)), 1e-9);
        }
    }

    #[test]
    fn occupancy_distribution_matches_brute_force() {
        let m = mixed_model(5, 6);
        let conv = Convolution::solve(&m);
        let got = conv.occupancy_distribution();
        let want = Brute::new(&m).occupancy_distribution();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            close(*g, *w, 1e-10);
        }
    }

    #[test]
    fn class_marginals_match_brute_force_and_normalise() {
        let m = mixed_model(6, 6);
        let conv = Convolution::solve(&m);
        let brute = Brute::new(&m);
        let dist = brute.distribution();
        for r in 0..4 {
            let marg = conv.class_marginal(r);
            close(marg.iter().sum::<f64>(), 1.0, 1e-10);
            // Compare against the brute-force marginal.
            for (j, &p) in marg.iter().enumerate() {
                let want: f64 = dist
                    .iter()
                    .filter(|(k, _)| k[r] as usize == j)
                    .map(|(_, p)| p)
                    .sum();
                close(p, want, 1e-9);
            }
            close(conv.concurrency(r), brute.concurrency(r), 1e-9);
        }
    }

    #[test]
    fn survives_table2_scale() {
        // N = 256 with the paper's loads: f64 would underflow in Φ and Ψ.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / 256.0))
            .with(TrafficClass::bpp(0.0012 / 256.0, 0.0012 / 256.0, 1.0));
        let m = Model::new(Dims::square(256), w).unwrap();
        let conv = Convolution::solve(&m);
        let lat: QLattice<ExtFloat> = QLattice::solve(&m);
        let got = measures(&m, &conv);
        let want = measures(&m, &lat);
        for r in 0..2 {
            close(got.classes[r].blocking, want.classes[r].blocking, 1e-8);
            close(
                got.classes[r].concurrency,
                want.classes[r].concurrency,
                1e-8,
            );
        }
        // The occupancy distribution is a proper distribution even here.
        let occ = conv.occupancy_distribution();
        close(occ.iter().sum::<f64>(), 1.0, 1e-9);
    }

    #[test]
    fn rectangular_switch_uses_min_side_capacity() {
        let w = Workload::new().with(TrafficClass::poisson(0.2));
        let m = Model::new(Dims::new(3, 9), w).unwrap();
        let conv = Convolution::solve(&m);
        let occ = conv.occupancy_distribution();
        assert_eq!(occ.len(), 4); // capacity = min(3, 9) = 3
        close(occ.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn bernoulli_marginal_at_exact_population_fit() {
        // S = 3 sources on a 3×3 switch (the paper's validity condition
        // requires S ≥ max(N1,N2), so S < capacity is unreachable for a
        // valid model — the tightest case is S = N).
        let w = Workload::new().with(TrafficClass::bpp(0.3, -0.1, 1.0));
        let m = Model::new(Dims::square(3), w).unwrap();
        let conv = Convolution::solve(&m);
        let marg = conv.class_marginal(0);
        assert_eq!(marg.len(), 4);
        close(marg.iter().sum::<f64>(), 1.0, 1e-12);
        // All three sources can be connected at once.
        assert!(marg[3] > 0.0);
        // The last arrival rate used is λ(2) = α + 2β > 0; λ(3) = 0 means
        // the chain simply has no birth out of k = 3 — consistency check
        // against brute force covers the values.
        let brute = Brute::new(&m);
        for (j, &p) in marg.iter().enumerate() {
            close(p, brute.pi(&[j as u32]), 1e-10);
        }
    }
}

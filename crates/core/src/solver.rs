//! Front-end solver: pick an algorithm/backend, run it, and expose every
//! performance measure (including the §4 revenue gradients) behind one
//! [`Solution`] type.
//!
//! For fault tolerance across backends — automatic escalation when a
//! fixed-precision backend fails, plus cross-algorithm self-verification —
//! see the [`resilient`] submodule.

pub mod cache;
pub mod resilient;

pub use cache::{solve_batch, solve_cached, SolveCache};

use std::fmt;

use xbar_numeric::{forward_diff, ExtFloat, GuardError};

use self::resilient::{CrossCheckFailure, SolveReport};

use crate::alg1::{QLattice, QRatio, ScaledQLattice};
use crate::alg2::Mva;
use crate::alg3::Convolution;
use crate::measures::{
    measures, measures_at, revenue_gradient_rho_closed, shadow_cost, SwitchMeasures,
};
use crate::model::{Dims, Model, ModelError};

/// Which algorithm/backend to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Follow the paper's §5.1 guidance, upgraded for our backends:
    /// Algorithm 1 in plain `f64` for small switches (the paper's
    /// "`N ≤ 32`" regime — actually used up to 64 here, where it is still
    /// comfortably in range), extended-range Algorithm 1 beyond.
    #[default]
    Auto,
    /// Algorithm 1, plain `f64` — fails with [`SolveError::Underflow`] if
    /// any lattice cell underflows.
    Alg1F64,
    /// Algorithm 1 with the paper's §6 dynamic scaling (geometric
    /// schedule).
    Alg1Scaled,
    /// Algorithm 1 on extended-range floats (robust at any size).
    Alg1Ext,
    /// Algorithm 2 — mean-value analysis on ratios (paper §5.1).
    Mva,
    /// Algorithm 3 (ours) — occupancy-space convolution; also the backend
    /// that exposes occupancy and per-class marginal distributions.
    Convolution,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Algorithm::Auto => "auto",
            Algorithm::Alg1F64 => "alg1-f64",
            Algorithm::Alg1Scaled => "alg1-scaled",
            Algorithm::Alg1Ext => "alg1-ext",
            Algorithm::Mva => "alg2-mva",
            Algorithm::Convolution => "alg3-convolution",
        };
        write!(f, "{s}")
    }
}

/// Why solving failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Model construction/validation failed (re-wrapped from perturbation
    /// helpers).
    Model(ModelError),
    /// The chosen fixed-precision backend under- or overflowed; re-run with
    /// [`Algorithm::Alg1Ext`] or [`Algorithm::Mva`].
    Underflow(Algorithm),
    /// The backend ran to completion but produced a measure the numeric
    /// guards reject (`NaN`/∞, or a probability outside `[0, 1]`).
    Guard {
        /// The backend that produced the rejected value.
        algorithm: Algorithm,
        /// Which quantity was rejected and why.
        source: GuardError,
    },
    /// Every backend in a resilient escalation chain failed; the report
    /// records each attempt and its cause.
    Exhausted(SolveReport),
    /// The winning backend and the independent cross-check algorithm
    /// disagree beyond tolerance; the payload carries both answers.
    CrossCheckFailed(Box<CrossCheckFailure>),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Model(e) => write!(f, "model error: {e}"),
            SolveError::Underflow(a) => write!(
                f,
                "backend {a} under/overflowed on this instance; use alg1-ext or alg2-mva"
            ),
            SolveError::Guard { algorithm, source } => {
                write!(
                    f,
                    "backend {algorithm} produced an invalid measure: {source}"
                )
            }
            SolveError::Exhausted(report) => {
                write!(f, "all backends failed: {}", report.summary())
            }
            SolveError::CrossCheckFailed(failure) => write!(f, "{failure}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ModelError> for SolveError {
    fn from(e: ModelError) -> Self {
        SolveError::Model(e)
    }
}

enum Backend {
    F64(QLattice<f64>),
    Scaled(ScaledQLattice),
    Ext(QLattice<ExtFloat>),
    Mva(Mva),
    Conv(Convolution),
}

impl QRatio for Backend {
    fn dims(&self) -> Dims {
        match self {
            Backend::F64(l) => l.dims(),
            Backend::Scaled(l) => l.dims(),
            Backend::Ext(l) => l.dims(),
            Backend::Mva(l) => l.dims(),
            Backend::Conv(l) => l.dims(),
        }
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        match self {
            Backend::F64(l) => l.q_ratio(num, den),
            Backend::Scaled(l) => l.q_ratio(num, den),
            Backend::Ext(l) => l.q_ratio(num, den),
            Backend::Mva(l) => l.q_ratio(num, den),
            Backend::Conv(l) => l.q_ratio(num, den),
        }
    }
}

/// A solved model: the lattice plus the evaluated measures.
pub struct Solution {
    model: Model,
    algorithm: Algorithm,
    backend: Backend,
    measures: SwitchMeasures,
}

/// `Auto`'s plain-`f64` ceiling: the largest `max N` the paper's "small
/// switch" regime covers before `Auto` moves to extended range. Shared
/// with [`crate::sweep::SweepSolver`]'s backend policy.
pub(crate) const AUTO_F64_MAX_N: u32 = 64;

/// Solve `model` with the requested algorithm.
pub fn solve(model: &Model, algorithm: Algorithm) -> Result<Solution, SolveError> {
    let effective = match algorithm {
        Algorithm::Auto => {
            if model.dims().max_n() <= AUTO_F64_MAX_N {
                Algorithm::Alg1F64
            } else {
                Algorithm::Alg1Ext
            }
        }
        a => a,
    };
    xbar_obs::inc("solver.solve");
    if xbar_obs::enabled() {
        xbar_obs::inc(&format!("solver.solve.{effective}"));
    }
    let backend = match effective {
        Algorithm::Alg1F64 => {
            let lat: QLattice<f64> = QLattice::solve(model);
            if !lat.is_healthy() {
                xbar_obs::inc("solver.reject.underflow");
                return Err(SolveError::Underflow(effective));
            }
            Backend::F64(lat)
        }
        Algorithm::Alg1Scaled => {
            let lat = ScaledQLattice::solve(model);
            if !lat.is_healthy() {
                xbar_obs::inc("solver.reject.underflow");
                return Err(SolveError::Underflow(effective));
            }
            Backend::Scaled(lat)
        }
        Algorithm::Alg1Ext => Backend::Ext(QLattice::solve(model)),
        Algorithm::Mva => Backend::Mva(Mva::solve(model)),
        Algorithm::Convolution => Backend::Conv(Convolution::solve(model)),
        Algorithm::Auto => unreachable!(),
    };
    let m = measures(model, &backend);
    m.validate().map_err(|source| {
        xbar_obs::inc("solver.reject.guard");
        SolveError::Guard {
            algorithm: effective,
            source,
        }
    })?;
    Ok(Solution {
        model: model.clone(),
        algorithm,
        backend,
        measures: m,
    })
}

impl Solution {
    /// The solved model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The algorithm this solution was requested with (as passed to
    /// [`solve`], so [`Algorithm::Auto`] stays `Auto`).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// All measures at the full dims.
    pub fn measures(&self) -> &SwitchMeasures {
        &self.measures
    }

    /// Blocking probability `1 − B_r` for class `r` — what the paper's
    /// figures plot.
    pub fn blocking(&self, r: usize) -> f64 {
        self.measures.classes[r].blocking
    }

    /// The paper's non-blocking probability `B_r` (eq. 4).
    pub fn nonblocking(&self, r: usize) -> f64 {
        self.measures.classes[r].nonblocking
    }

    /// Concurrency `E_r` (mean connections in progress).
    pub fn concurrency(&self, r: usize) -> f64 {
        self.measures.classes[r].concurrency
    }

    /// Class throughput `μ_r·E_r`.
    pub fn throughput(&self, r: usize) -> f64 {
        self.measures.classes[r].throughput
    }

    /// Call-level acceptance ratio for class `r` (equals `B_r` for Poisson
    /// classes).
    pub fn call_acceptance(&self, r: usize) -> f64 {
        self.measures.classes[r].call_acceptance
    }

    /// Revenue `W(N) = Σ_r w_r·E_r` (paper §4).
    pub fn revenue(&self) -> f64 {
        self.measures.revenue
    }

    /// Unweighted throughput `Σ_r μ_r·E_r`.
    pub fn total_throughput(&self) -> f64 {
        self.measures.total_throughput
    }

    /// Measures at a sub-switch (same per-set rates), read from the same
    /// solved lattice.
    pub fn measures_at(&self, dims: Dims) -> SwitchMeasures {
        measures_at(&self.model, &self.backend, dims)
    }

    /// Shadow cost `ΔW = W(N) − W(N − a_r·I)` (paper §4).
    pub fn shadow_cost(&self, r: usize) -> f64 {
        shadow_cost(&self.model, &self.backend, r)
    }

    /// Closed-form `∂W/∂ρ_r` (paper §4; exact for workloads with no bursty
    /// class, first-order otherwise).
    pub fn revenue_gradient_rho(&self, r: usize) -> f64 {
        revenue_gradient_rho_closed(&self.model, &self.backend, r)
    }

    /// `∂W/∂ρ_r` by forward difference (re-solves the model twice with the
    /// same algorithm) — the cross-check for the closed form.
    pub fn revenue_gradient_rho_fd(&self, r: usize) -> Result<f64, SolveError> {
        let x0 = self.model.workload().classes()[r].rho();
        self.fd(x0, |x| {
            let m = self.model.with_rho(r, x)?;
            Ok(solve(&m, self.algorithm)?.revenue())
        })
    }

    /// `∂W/∂(β_r/μ_r)` by forward difference — the quantity the paper
    /// approximates numerically for bursty classes (§4, Table 2).
    pub fn revenue_gradient_beta_fd(&self, r: usize) -> Result<f64, SolveError> {
        let c = &self.model.workload().classes()[r];
        let x0 = c.beta / c.mu;
        self.fd(x0, |x| {
            let m = self.model.with_beta_over_mu(r, x)?;
            Ok(solve(&m, self.algorithm)?.revenue())
        })
    }

    /// Stationary distribution of the total occupancy `k·A` (how many
    /// ports are busy). Served directly when this solution was computed
    /// with [`Algorithm::Convolution`]; otherwise a convolution is run on
    /// demand (`O(R·C²)`).
    pub fn occupancy_distribution(&self) -> Vec<f64> {
        match &self.backend {
            Backend::Conv(c) => c.occupancy_distribution(),
            _ => Convolution::solve(&self.model).occupancy_distribution(),
        }
    }

    /// Marginal distribution `P(k_r = j)` of class `r` (same on-demand
    /// behaviour as [`Solution::occupancy_distribution`]).
    pub fn class_marginal(&self, r: usize) -> Vec<f64> {
        match &self.backend {
            Backend::Conv(c) => c.class_marginal(r),
            _ => Convolution::solve(&self.model).class_marginal(r),
        }
    }

    fn fd<F>(&self, x0: f64, f: F) -> Result<f64, SolveError>
    where
        F: Fn(f64) -> Result<f64, SolveError>,
    {
        // forward_diff takes an infallible closure; trap the first error.
        let mut err: Option<SolveError> = None;
        let g = forward_diff(
            |x| match f(x) {
                Ok(v) => v,
                Err(e) => {
                    err.get_or_insert(e);
                    f64::NAN
                }
            },
            x0,
        );
        match err {
            Some(e) => Err(e),
            None => Ok(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::Brute;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn mixed_model(n: u32) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3).with_weight(1.0))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0).with_weight(0.5))
            .with(
                TrafficClass::poisson(0.1)
                    .with_bandwidth(2)
                    .with_weight(0.25),
            );
        Model::new(Dims::square(n), w).unwrap()
    }

    #[test]
    fn all_algorithms_agree_small() {
        let m = mixed_model(6);
        let algs = [
            Algorithm::Alg1F64,
            Algorithm::Alg1Scaled,
            Algorithm::Alg1Ext,
            Algorithm::Mva,
            Algorithm::Convolution,
            Algorithm::Auto,
        ];
        let brute = Brute::new(&m);
        for alg in algs {
            let sol = solve(&m, alg).unwrap();
            for r in 0..3 {
                close(sol.nonblocking(r), brute.nonblocking(r), 1e-9);
                close(sol.concurrency(r), brute.concurrency(r), 1e-9);
            }
            close(sol.revenue(), brute.revenue(), 1e-9);
        }
    }

    #[test]
    fn auto_switches_backend_with_size() {
        // Small: plain f64 must succeed (Auto = Alg1F64).
        let m = mixed_model(8);
        assert!(solve(&m, Algorithm::Auto).is_ok());
        // Large: plain f64 underflows, Auto must still succeed (ExtFloat).
        let w = Workload::new().with(TrafficClass::poisson(1e-5));
        let big = Model::new(Dims::square(200), w).unwrap();
        assert!(matches!(
            solve(&big, Algorithm::Alg1F64),
            Err(SolveError::Underflow(_))
        ));
        let sol = solve(&big, Algorithm::Auto).unwrap();
        assert!(sol.blocking(0).is_finite());
    }

    #[test]
    fn large_switch_backends_agree() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / 128.0).with_weight(1.0))
            .with(TrafficClass::bpp(0.0012 / 128.0, 0.0012 / 128.0, 1.0).with_weight(0.0001));
        let m = Model::new(Dims::square(128), w).unwrap();
        let ext = solve(&m, Algorithm::Alg1Ext).unwrap();
        let scaled = solve(&m, Algorithm::Alg1Scaled).unwrap();
        let mva = solve(&m, Algorithm::Mva).unwrap();
        let conv = solve(&m, Algorithm::Convolution).unwrap();
        for r in 0..2 {
            close(ext.blocking(r), scaled.blocking(r), 1e-8);
            close(ext.blocking(r), mva.blocking(r), 1e-8);
            close(ext.blocking(r), conv.blocking(r), 1e-8);
            close(ext.concurrency(r), mva.concurrency(r), 1e-8);
            close(ext.concurrency(r), conv.concurrency(r), 1e-8);
        }
        close(ext.revenue(), mva.revenue(), 1e-8);
        close(ext.revenue(), conv.revenue(), 1e-8);
    }

    #[test]
    fn gradients_closed_vs_fd_pure_poisson() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1).with_weight(1.0))
            .with(
                TrafficClass::poisson(0.05)
                    .with_bandwidth(2)
                    .with_weight(0.3),
            );
        let m = Model::new(Dims::square(8), w).unwrap();
        let sol = solve(&m, Algorithm::Alg1F64).unwrap();
        for r in 0..2 {
            let closed = sol.revenue_gradient_rho(r);
            let fd = sol.revenue_gradient_rho_fd(r).unwrap();
            close(closed, fd, 1e-5);
        }
    }

    #[test]
    fn beta_gradient_sign_matches_paper_table2_story() {
        // Table 2: ∂W/∂(β2/μ2) turns negative once the switch is large
        // enough that bursty traffic displaces the high-revenue class.
        let n = 16u32;
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / n as f64).with_weight(1.0))
            .with(TrafficClass::bpp(0.0012 / n as f64, 0.0012 / n as f64, 1.0).with_weight(0.0001));
        let m = Model::new(Dims::square(n), w).unwrap();
        let sol = solve(&m, Algorithm::Alg1F64).unwrap();
        let g = sol.revenue_gradient_beta_fd(1).unwrap();
        assert!(g < 0.0, "{g}");
    }

    #[test]
    fn solution_accessors_consistent() {
        let m = mixed_model(5);
        let sol = solve(&m, Algorithm::Auto).unwrap();
        for r in 0..3 {
            close(sol.blocking(r), 1.0 - sol.nonblocking(r), 1e-15);
            let c = &sol.measures().classes[r];
            close(
                sol.throughput(r),
                c.concurrency * m.workload().classes()[r].mu,
                1e-15,
            );
        }
        let sub = sol.measures_at(Dims::square(3));
        assert!(sub.revenue < sol.revenue());
        assert!(sol.shadow_cost(0) > 0.0);
        assert_eq!(format!("{}", Algorithm::Mva), "alg2-mva");
    }
}

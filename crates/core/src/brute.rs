//! Brute-force evaluation of the product form by exhaustive enumeration of
//! `Γ(N)` — the ground-truth oracle every fast algorithm in this crate is
//! tested against.
//!
//! Exponential in the number of classes, so only usable for small switches,
//! which is exactly its job: on small instances it computes `G(N)`, `π(k)`
//! and every performance measure *directly from the definitions* (paper
//! eq. 2–4), with extended-range arithmetic so factorial terms cannot
//! overflow.

use xbar_numeric::{permutation, ExtFloat};
use xbar_traffic::TrafficClass;

use crate::model::{Dims, Model};
use crate::state::StateIter;

/// Brute-force solver for a [`Model`].
#[derive(Clone, Debug)]
pub struct Brute<'m> {
    model: &'m Model,
}

impl<'m> Brute<'m> {
    /// Wrap a model. No size check — callers are expected to keep `N` small
    /// (state-space size is reported by [`Brute::state_count`]).
    pub fn new(model: &'m Model) -> Self {
        Brute { model }
    }

    fn classes(&self) -> &[TrafficClass] {
        self.model.workload().classes()
    }

    fn bandwidths(&self) -> Vec<u32> {
        self.classes().iter().map(|c| c.bandwidth).collect()
    }

    /// `Ψ(k) = N1!/(N1−k·A)! · N2!/(N2−k·A)!` for given dims.
    fn psi(dims: Dims, ka: u32) -> ExtFloat {
        ExtFloat::from_f64(permutation(dims.n1 as u64, ka as u64))
            * ExtFloat::from_f64(permutation(dims.n2 as u64, ka as u64))
    }

    /// `Φ_r(k) = Π_{l=1..k} λ_r(l−1)/(l·μ_r)`.
    fn phi(class: &TrafficClass, k: u32) -> ExtFloat {
        let mut acc = ExtFloat::ONE;
        for l in 1..=k {
            acc *= ExtFloat::from_f64(class.lambda((l - 1) as u64) / (l as f64 * class.mu));
        }
        acc
    }

    /// Unnormalised stationary weight `Ψ(k)·Π_r Φ_r(k_r)` at dims `dims`.
    pub fn weight(&self, dims: Dims, k: &[u32]) -> ExtFloat {
        let bw = self.bandwidths();
        let ka = StateIter::occupancy(&bw, k);
        debug_assert!(ka <= dims.min_n());
        let mut w = Self::psi(dims, ka);
        for (class, &kr) in self.classes().iter().zip(k) {
            w *= Self::phi(class, kr);
        }
        w
    }

    /// The normalisation constant `G(dims)` (paper eq. 3), summed over the
    /// full state space.
    pub fn g(&self, dims: Dims) -> ExtFloat {
        let bw = self.bandwidths();
        StateIter::new(&bw, dims.min_n())
            .map(|k| self.weight(dims, &k))
            .sum()
    }

    /// `Q(dims) = G(dims)/(N1!·N2!)` — the normalised constant Algorithm 1
    /// recurses on (paper §5).
    pub fn q(&self, dims: Dims) -> ExtFloat {
        let ln_fact =
            xbar_numeric::ln_factorial(dims.n1 as u64) + xbar_numeric::ln_factorial(dims.n2 as u64);
        self.g(dims) / ExtFloat::exp(ln_fact)
    }

    /// Number of states in `Γ(N)`.
    pub fn state_count(&self) -> usize {
        StateIter::for_model(self.model).count()
    }

    /// Stationary probability `π(k)` (paper eq. 2) at the model's own dims.
    pub fn pi(&self, k: &[u32]) -> f64 {
        let dims = self.model.dims();
        self.weight(dims, k).ratio(self.g(dims))
    }

    /// Full stationary distribution as `(state, π)` pairs.
    pub fn distribution(&self) -> Vec<(Vec<u32>, f64)> {
        let dims = self.model.dims();
        let g = self.g(dims);
        StateIter::for_model(self.model)
            .map(|k| {
                let p = self.weight(dims, &k).ratio(g);
                (k, p)
            })
            .collect()
    }

    /// Non-blocking probability `B_r = G(N − a_r·I)/G(N)` (paper eq. 4).
    ///
    /// Zero when the shrunken switch would not exist.
    pub fn nonblocking(&self, r: usize) -> f64 {
        let dims = self.model.dims();
        let a = self.classes()[r].bandwidth;
        match dims.shrink(a) {
            Some(small) => self.g(small).ratio(self.g(dims)),
            None => 0.0,
        }
    }

    /// Per-class concurrency `E_r = Σ_k k_r·π(k)` — summed directly from
    /// the definition (paper §3), no recursion involved.
    pub fn concurrency(&self, r: usize) -> f64 {
        let dims = self.model.dims();
        let g = self.g(dims);
        let total: ExtFloat = StateIter::for_model(self.model)
            .map(|k| self.weight(dims, &k) * ExtFloat::from_f64(k[r] as f64))
            .sum();
        total.ratio(g)
    }

    /// Weighted throughput / revenue `W = Σ_r w_r·E_r` (paper §4).
    pub fn revenue(&self) -> f64 {
        (0..self.classes().len())
            .map(|r| self.classes()[r].weight * self.concurrency(r))
            .sum()
    }

    /// Distribution of the total occupancy `k·A` (how many input/output
    /// ports are in use) — a diagnostic also exposed by the simulator.
    pub fn occupancy_distribution(&self) -> Vec<f64> {
        let dims = self.model.dims();
        let bw = self.bandwidths();
        let g = self.g(dims);
        let mut hist = vec![0.0f64; dims.min_n() as usize + 1];
        for k in StateIter::for_model(self.model) {
            let ka = StateIter::occupancy(&bw, &k) as usize;
            hist[ka] += self.weight(dims, &k).ratio(g);
        }
        hist
    }

    /// Verify the detailed-balance equations
    /// `π(k)·q(k, k+1_r) = π(k+1_r)·q(k+1_r, k)` over the whole chain,
    /// returning the worst relative violation.
    ///
    /// The birth rate consistent with `Ψ` is
    /// `q(k, k+1_r) = P(N1−k·A, a_r)·P(N2−k·A, a_r)·λ_r(k_r)` — for
    /// `a_r = 1` this is the paper's `(N1−k·A)(N2−k·A)·λ_r(k_r)`; for
    /// `a_r ≥ 2` the permutation form is the one the product form (eq. 2)
    /// actually balances against (see DESIGN.md).
    pub fn detailed_balance_violation(&self) -> f64 {
        let dims = self.model.dims();
        let bw = self.bandwidths();
        let cap = dims.min_n();
        let g = self.g(dims);
        let mut worst = 0.0f64;
        for k in StateIter::for_model(self.model) {
            let ka = StateIter::occupancy(&bw, &k);
            let pi_k = self.weight(dims, &k).ratio(g);
            for (r, class) in self.classes().iter().enumerate() {
                let a = class.bandwidth;
                if ka + a > cap {
                    continue; // k + 1_r outside Γ(N)
                }
                let mut k_up = k.clone();
                k_up[r] += 1;
                let pi_up = self.weight(dims, &k_up).ratio(g);
                let birth = permutation((dims.n1 - ka) as u64, a as u64)
                    * permutation((dims.n2 - ka) as u64, a as u64)
                    * class.lambda(k[r] as u64);
                let death = (k[r] + 1) as f64 * class.mu;
                let lhs = pi_k * birth;
                let rhs = pi_up * death;
                let scale = lhs.abs().max(rhs.abs());
                if scale > 0.0 {
                    worst = worst.max((lhs - rhs).abs() / scale);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_traffic::Workload;

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn poisson_model(n: u32, rho: f64) -> Model {
        let w = Workload::new().with(TrafficClass::poisson(rho));
        Model::new(Dims::square(n), w).unwrap()
    }

    #[test]
    fn distribution_normalises() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.1, 1.0).with_bandwidth(2));
        let m = Model::new(Dims::new(5, 7), w).unwrap();
        let b = Brute::new(&m);
        let total: f64 = b.distribution().iter().map(|(_, p)| p).sum();
        close(total, 1.0, 1e-12);
    }

    #[test]
    fn one_by_one_closed_form() {
        // N = (1,1), one Poisson class: G = 1 + ρ, B = 1/(1+ρ), E = ρ/(1+ρ).
        let m = poisson_model(1, 0.5);
        let b = Brute::new(&m);
        close(b.g(Dims::square(1)).to_f64(), 1.5, 1e-14);
        close(b.nonblocking(0), 1.0 / 1.5, 1e-14);
        close(b.concurrency(0), 0.5 / 1.5, 1e-14);
    }

    #[test]
    fn two_by_two_closed_form() {
        // N = (2,2), one Poisson class a = 1:
        // G = 1 + 4ρ + 2ρ² (Ψ(1) = 2·2, Ψ(2) = 2!·2!, Φ(2) = ρ²/2).
        let rho = 0.3;
        let m = poisson_model(2, rho);
        let b = Brute::new(&m);
        let g = 1.0 + 4.0 * rho + 2.0 * rho * rho;
        close(b.g(Dims::square(2)).to_f64(), g, 1e-14);
        close(b.nonblocking(0), (1.0 + rho) / g, 1e-14);
        // E = (4ρ + 4ρ²)/G  (k=1 term weight 4ρ, k=2 term 2ρ², times k).
        close(b.concurrency(0), (4.0 * rho + 4.0 * rho * rho) / g, 1e-14);
    }

    #[test]
    fn rectangular_uses_min_side() {
        // N = (1, 3): capacity 1, G = 1 + Ψ(1)·ρ with Ψ(1) = 1·3.
        let w = Workload::new().with(TrafficClass::poisson(0.2));
        let m = Model::new(Dims::new(1, 3), w).unwrap();
        let b = Brute::new(&m);
        close(b.g(Dims::new(1, 3)).to_f64(), 1.0 + 3.0 * 0.2, 1e-14);
        assert_eq!(b.state_count(), 2);
    }

    #[test]
    fn table2_n1_anchor() {
        // The N=1 row of the paper's Table 2, first parameter set:
        // blocking = 0.00239425, W = 0.00119725.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012).with_weight(1.0))
            .with(TrafficClass::bpp(0.0012, 0.0012, 1.0).with_weight(0.0001));
        let m = Model::new(Dims::square(1), w).unwrap();
        let b = Brute::new(&m);
        let blocking = 1.0 - b.nonblocking(0);
        assert!((blocking - 0.00239425).abs() < 5e-9, "{blocking}");
        assert!((b.revenue() - 0.00119725).abs() < 5e-9, "{}", b.revenue());
    }

    #[test]
    fn detailed_balance_holds_for_mixed_workload() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.4))
            .with(TrafficClass::bpp(0.3, 0.1, 1.0))
            .with(TrafficClass::bpp(0.8, -0.1, 2.0).with_bandwidth(2)); // S=8 Bernoulli
        let m = Model::new(Dims::new(6, 8), w).unwrap();
        let b = Brute::new(&m);
        assert!(b.detailed_balance_violation() < 1e-12);
    }

    #[test]
    fn bernoulli_population_truncates_support() {
        // S = 2 sources on a big switch: states with k > 2 have π = 0.
        let w = Workload::new().with(TrafficClass::bpp(0.2, -0.1, 1.0));
        let m = Model::new(Dims::square(2), w).unwrap();
        let b = Brute::new(&m);
        close(b.pi(&[2]) + b.pi(&[1]) + b.pi(&[0]), 1.0, 1e-12);
        // On a 2×2 switch S=2 exactly fills it; occupancy dist has 3 bins.
        let occ = b.occupancy_distribution();
        assert_eq!(occ.len(), 3);
        close(occ.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn occupancy_distribution_matches_pi_sums() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.5))
            .with(TrafficClass::poisson(0.3).with_bandwidth(2));
        let m = Model::new(Dims::square(4), w).unwrap();
        let b = Brute::new(&m);
        let occ = b.occupancy_distribution();
        close(occ.iter().sum::<f64>(), 1.0, 1e-12);
        // P(occupancy = 0) is π(0,0).
        close(occ[0], b.pi(&[0, 0]), 1e-14);
    }

    #[test]
    fn q_matches_g_over_factorials() {
        let m = poisson_model(4, 0.7);
        let b = Brute::new(&m);
        let dims = Dims::square(4);
        let expect = b.g(dims).to_f64() / (24.0 * 24.0);
        close(b.q(dims).to_f64(), expect, 1e-12);
    }

    #[test]
    fn nonblocking_zero_when_bandwidth_cannot_fit_shrunk_switch() {
        let w = Workload::new().with(TrafficClass::poisson(0.1).with_bandwidth(2));
        let m = Model::new(Dims::square(2), w).unwrap();
        let b = Brute::new(&m);
        // N − a·I = (0,0): G(0)/G(N) is still well-defined (G(0)=1).
        assert!(b.nonblocking(0) > 0.0);
        // But a 1×1 switch can't shrink by 2 at all.
        let w = Workload::new().with(TrafficClass::poisson(0.1));
        let m1 = Model::new(Dims::square(1), w).unwrap();
        let b1 = Brute::new(&m1);
        assert!(b1.nonblocking(0) > 0.0); // shrink(1) = (0,0) exists
    }
}

//! Reduced-load (Erlang fixed-point) approximation — the classical cheap
//! estimate the exact algorithms should be judged against.
//!
//! Before product-form solutions, switch blocking was (and for big
//! networks still is) estimated by pretending each port blocks
//! independently: a class-`r` request needs its `a_r` inputs and `a_r`
//! outputs simultaneously idle, so
//!
//! ```text
//! B_r ≈ (1 − u1)^{a_r} · (1 − u2)^{a_r},
//! u1 = Σ_r a_r·E_r / N1,    u2 = Σ_r a_r·E_r / N2,
//! E_r = P(N1,a_r)·P(N2,a_r)·(α_r + β_r·E_r)·B_r / μ_r,
//! ```
//!
//! iterated (with damping) to a fixed point. The `α + β·E` term carries
//! the BPP state dependence at mean-field level. The approximation is
//! `O(R)` per iteration and size-independent — the price is that it knows
//! nothing about port-occupancy *correlations*, which is precisely what
//! the paper's exact analysis adds. The `approximation` experiment
//! quantifies the resulting error across load and switch size.

use xbar_numeric::permutation;

use crate::model::Model;

/// Result of the fixed-point iteration.
#[derive(Clone, Debug)]
pub struct FixedPoint {
    /// Approximate non-blocking probability per class.
    pub nonblocking: Vec<f64>,
    /// Approximate concurrency per class.
    pub concurrency: Vec<f64>,
    /// Input- and output-side utilisations at the fixed point.
    pub utilisation: (f64, f64),
    /// Iterations used.
    pub iterations: u32,
    /// `true` iff the iteration met the tolerance before the cap.
    pub converged: bool,
}

impl FixedPoint {
    /// Approximate blocking `1 − B_r`.
    pub fn blocking(&self, r: usize) -> f64 {
        1.0 - self.nonblocking[r]
    }

    /// Approximate revenue `Σ w_r E_r`.
    pub fn revenue(&self, model: &Model) -> f64 {
        model
            .workload()
            .classes()
            .iter()
            .zip(&self.concurrency)
            .map(|(c, e)| c.weight * e)
            .sum()
    }
}

/// Run the reduced-load fixed point for `model`.
///
/// Solved by bisection on the total busy-port count `U = Σ_r a_r·E_r`:
/// given `U`, the per-class equations are *linear* in `E_r`
/// (`E_r = P·P·α_r·B_r / (μ_r − P·P·β_r·B_r)`, the closed form of the
/// `α + β·E` feedback), each capped at the physical bound
/// `E_r ≤ min(N1,N2)/a_r`, and the implied `Σ a_r·E_r(U)` is monotone
/// decreasing in `U` — so the crossing is unique and bisection always
/// converges. (A naive damped Picard iteration limit-cycles for strongly
/// peaky classes, where the mean-field feedback `P·P·β_r` exceeds `μ_r`
/// until blocking throttles it.)
pub fn reduced_load(model: &Model) -> FixedPoint {
    let dims = model.dims();
    let classes = model.workload().classes();
    let pp: Vec<f64> = classes
        .iter()
        .map(|c| {
            permutation(dims.n1 as u64, c.bandwidth as u64)
                * permutation(dims.n2 as u64, c.bandwidth as u64)
        })
        .collect();
    let capacity = dims.min_n() as f64;

    // Per-class E at a trial utilisation level.
    let e_at = |u_total: f64, r: usize| -> f64 {
        let class = &classes[r];
        let a = class.bandwidth as i32;
        let u1 = (u_total / dims.n1 as f64).clamp(0.0, 1.0);
        let u2 = (u_total / dims.n2 as f64).clamp(0.0, 1.0);
        let b = (1.0 - u1).powi(a) * (1.0 - u2).powi(a);
        let cap = capacity / class.bandwidth as f64;
        let denom = class.mu - pp[r] * class.beta * b;
        if denom <= class.mu * 1e-12 {
            // Mean-field supercritical at this blocking level: pinned at
            // the physical capacity (bisection will push U up until the
            // thinned blocking restores subcriticality).
            cap
        } else {
            (pp[r] * class.alpha * b / denom).min(cap)
        }
    };
    let implied = |u_total: f64| -> f64 {
        classes
            .iter()
            .enumerate()
            .map(|(r, c)| c.bandwidth as f64 * e_at(u_total, r))
            .sum()
    };

    let mut iterations = 0u32;
    let (mut lo, mut hi) = (0.0f64, capacity);
    let converged = if implied(capacity) >= capacity {
        // Saturated: the fixed point sits at the capacity boundary.
        lo = capacity;
        hi = capacity;
        true
    } else {
        for _ in 0..200 {
            iterations += 1;
            let mid = 0.5 * (lo + hi);
            if implied(mid) > mid {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-13 * (1.0 + capacity) {
                break;
            }
        }
        true
    };

    let u_total = 0.5 * (lo + hi);
    let e: Vec<f64> = (0..classes.len()).map(|r| e_at(u_total, r)).collect();
    let b: Vec<f64> = classes
        .iter()
        .map(|c| {
            let a = c.bandwidth as i32;
            let u1 = (u_total / dims.n1 as f64).clamp(0.0, 1.0);
            let u2 = (u_total / dims.n2 as f64).clamp(0.0, 1.0);
            (1.0 - u1).powi(a) * (1.0 - u2).powi(a)
        })
        .collect();
    let u1 = (u_total / dims.n1 as f64).clamp(0.0, 1.0);
    let u2 = (u_total / dims.n2 as f64).clamp(0.0, 1.0);
    FixedPoint {
        nonblocking: b,
        concurrency: e,
        utilisation: (u1, u2),
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dims;
    use crate::solver::{solve, Algorithm};
    use xbar_traffic::{TrafficClass, Workload};

    fn poisson_model(n: u32, rho: f64) -> Model {
        Model::new(
            Dims::square(n),
            Workload::new().with(TrafficClass::poisson(rho)),
        )
        .unwrap()
    }

    #[test]
    fn converges_and_reports_sane_values() {
        let m = poisson_model(16, 0.02);
        let fp = reduced_load(&m);
        assert!(fp.converged);
        assert!((0.0..=1.0).contains(&fp.nonblocking[0]));
        assert!(fp.concurrency[0] > 0.0);
        assert!(fp.utilisation.0 > 0.0 && fp.utilisation.0 < 1.0);
    }

    #[test]
    fn accurate_at_light_load() {
        let m = poisson_model(16, 0.001);
        let fp = reduced_load(&m);
        let exact = solve(&m, Algorithm::Auto).unwrap();
        let rel = (fp.blocking(0) - exact.blocking(0)).abs() / exact.blocking(0);
        assert!(rel < 0.05, "rel err {rel}");
        let rel_e = (fp.concurrency[0] - exact.concurrency(0)).abs() / exact.concurrency(0);
        assert!(rel_e < 0.01, "rel err {rel_e}");
    }

    #[test]
    fn overestimates_blocking_but_stays_close() {
        // Ignoring port-occupancy correlations makes the independent-port
        // estimate pessimistic: busy inputs and busy outputs are positively
        // correlated (they come in pairs), so true availability is higher.
        // Measured: +6.5% relative at light load on an 8×8, decaying as
        // blocking saturates.
        for rho in [0.001, 0.01, 0.1, 0.5] {
            let m = poisson_model(8, rho);
            let fp = reduced_load(&m);
            let exact = solve(&m, Algorithm::Auto).unwrap();
            let rel = (fp.blocking(0) - exact.blocking(0)) / exact.blocking(0);
            assert!(rel >= 0.0, "rho={rho}: {rel}");
            assert!(rel < 0.10, "rho={rho}: {rel}");
        }
    }

    #[test]
    fn handles_bursty_and_multirate_classes() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.02))
            .with(TrafficClass::bpp(0.01, 0.3, 1.0))
            .with(TrafficClass::poisson(0.004).with_bandwidth(2));
        let m = Model::new(Dims::square(12), w).unwrap();
        let fp = reduced_load(&m);
        assert!(fp.converged);
        let exact = solve(&m, Algorithm::Auto).unwrap();
        for r in 0..3 {
            // Mean-field level agreement only — generous bound.
            let rel = (fp.blocking(r) - exact.blocking(r)).abs() / exact.blocking(r).max(1e-9);
            assert!(rel < 0.5, "class {r}: rel err {rel}");
        }
        // Wider class still blocks more under the approximation.
        assert!(fp.blocking(2) > fp.blocking(0));
    }

    #[test]
    fn revenue_approximation_matches_exact_at_light_load() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.001).with_weight(1.0))
            .with(TrafficClass::poisson(0.002).with_weight(0.5));
        let m = Model::new(Dims::square(10), w).unwrap();
        let fp = reduced_load(&m);
        let exact = solve(&m, Algorithm::Auto).unwrap();
        let rel = (fp.revenue(&m) - exact.revenue()).abs() / exact.revenue();
        assert!(rel < 0.01, "{rel}");
    }

    #[test]
    fn zero_load_fixed_point_is_trivial() {
        let m = poisson_model(4, 1e-15);
        let fp = reduced_load(&m);
        assert!(fp.converged);
        assert!(fp.blocking(0) < 1e-10);
    }
}

//! Transient analysis of the crossbar CTMC by uniformisation — an
//! extension beyond the paper, which analyses the stationary regime only.
//!
//! For switches small enough to enumerate `Γ(N)`, the continuous-time
//! Markov chain with the product-form-consistent rates
//!
//! ```text
//! q(k, k+1_r) = P(N1−k·A, a_r)·P(N2−k·A, a_r)·λ_r(k_r)
//! q(k, k−1_r) = k_r·μ_r
//! ```
//!
//! is built explicitly and `π(t) = π(0)·e^{Qt}` is evaluated by
//! uniformisation: with `Λ ≥ max_k |q(k,k)|` and `P = I + Q/Λ`,
//!
//! ```text
//! π(t) = Σ_{n≥0} Poisson(Λt; n) · π(0)·Pⁿ,
//! ```
//!
//! truncated when the Poisson tail falls below `1e-12`. This answers
//! questions the stationary analysis cannot: how long after power-on (or a
//! traffic surge) the switch takes to reach its operating point, and what
//! blocking looks like on the way there.

use std::collections::HashMap;

use xbar_numeric::{ln_factorial, permutation, NeumaierSum};

use crate::brute::Brute;
use crate::model::Model;
use crate::state::StateIter;

/// Hard cap on the enumerated state count (the dense vector iteration is
/// `O(states · transitions)` per uniformisation step).
pub const MAX_STATES: usize = 200_000;

/// Explicit CTMC of a (small) crossbar model.
pub struct Transient {
    model: Model,
    states: Vec<Vec<u32>>,
    /// Sparse `P = I + Q/Λ` rows: `(column, probability)`.
    p_rows: Vec<Vec<(usize, f64)>>,
    /// Uniformisation rate `Λ`.
    uniform_rate: f64,
    /// Per-state, per-class availability (the paper-`B_r` integrand).
    avail: Vec<Vec<f64>>,
}

impl Transient {
    /// Build the chain. Uses `Λ = 1.02 × max exit rate`.
    ///
    /// # Panics
    /// Panics if the state space exceeds [`MAX_STATES`].
    pub fn new(model: &Model) -> Self {
        Self::with_rate_margin(model, 1.02)
    }

    /// Build with an explicit uniformisation-rate margin (`Λ = margin ×
    /// max exit rate`). Any `margin ≥ 1` must give identical results —
    /// asserted in tests; exposed for exactly that invariance check.
    pub fn with_rate_margin(model: &Model, margin: f64) -> Self {
        assert!(margin >= 1.0);
        let dims = model.dims();
        let classes = model.workload().classes();
        let bw: Vec<u32> = classes.iter().map(|c| c.bandwidth).collect();

        let states: Vec<Vec<u32>> = StateIter::for_model(model).collect();
        assert!(
            states.len() <= MAX_STATES,
            "state space too large for transient analysis: {}",
            states.len()
        );
        let index: HashMap<&[u32], usize> = states
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_slice(), i))
            .collect();

        // Raw rate rows and exit rates.
        let cap = dims.min_n();
        let mut rate_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(states.len());
        let mut max_exit = 0.0f64;
        let mut avail = Vec::with_capacity(states.len());
        for k in &states {
            let ka = StateIter::occupancy(&bw, k);
            let mut row = Vec::new();
            let mut exit = 0.0;
            let mut row_avail = Vec::with_capacity(classes.len());
            for (r, class) in classes.iter().enumerate() {
                let a = class.bandwidth;
                // Birth.
                if ka + a <= cap {
                    let rate = permutation((dims.n1 - ka) as u64, a as u64)
                        * permutation((dims.n2 - ka) as u64, a as u64)
                        * class.lambda(k[r] as u64);
                    if rate > 0.0 {
                        let mut up = k.clone();
                        up[r] += 1;
                        row.push((index[up.as_slice()], rate));
                        exit += rate;
                    }
                }
                // Death.
                if k[r] > 0 {
                    let rate = k[r] as f64 * class.mu;
                    let mut down = k.clone();
                    down[r] -= 1;
                    row.push((index[down.as_slice()], rate));
                    exit += rate;
                }
                // Availability of this class in this state.
                let tuples =
                    permutation(dims.n1 as u64, a as u64) * permutation(dims.n2 as u64, a as u64);
                row_avail.push(
                    permutation((dims.n1 - ka) as u64, a as u64)
                        * permutation((dims.n2 - ka) as u64, a as u64)
                        / tuples,
                );
            }
            max_exit = max_exit.max(exit);
            rate_rows.push(row);
            avail.push(row_avail);
        }

        let uniform_rate = (max_exit * margin).max(1e-300);
        // P = I + Q/Λ.
        let mut p_rows = Vec::with_capacity(states.len());
        for (i, row) in rate_rows.iter().enumerate() {
            let exit: f64 = row.iter().map(|(_, r)| r).sum();
            let mut prow: Vec<(usize, f64)> =
                row.iter().map(|&(j, r)| (j, r / uniform_rate)).collect();
            prow.push((i, 1.0 - exit / uniform_rate));
            p_rows.push(prow);
        }

        Transient {
            model: model.clone(),
            states,
            p_rows,
            uniform_rate,
            avail,
        }
    }

    /// Number of states in the chain.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Index of the empty state (all `k_r = 0`).
    pub fn empty_state(&self) -> usize {
        self.states
            .iter()
            .position(|k| k.iter().all(|&x| x == 0))
            .expect("empty state exists")
    }

    fn step(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; v.len()];
        for (i, row) in self.p_rows.iter().enumerate() {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for &(j, p) in row {
                out[j] += vi * p;
            }
        }
        out
    }

    /// `π(t)` starting from the empty switch.
    pub fn distribution(&self, t: f64) -> Vec<f64> {
        let mut init = vec![0.0; self.states.len()];
        init[self.empty_state()] = 1.0;
        self.distribution_from(&init, t)
    }

    /// `π(t)` from an arbitrary initial distribution.
    pub fn distribution_from(&self, init: &[f64], t: f64) -> Vec<f64> {
        assert_eq!(init.len(), self.states.len());
        assert!(t >= 0.0);
        let lt = self.uniform_rate * t;
        if lt == 0.0 {
            return init.to_vec();
        }
        let mut out = vec![0.0f64; init.len()];
        let mut v = init.to_vec();
        let mut cumulative = 0.0f64;
        let mut n = 0u64;
        loop {
            // Poisson(Λt; n) in log space (stable for huge Λt).
            let ln_w = -lt + n as f64 * lt.ln() - ln_factorial(n);
            let w = ln_w.exp();
            if w > 0.0 {
                for (o, &x) in out.iter_mut().zip(&v) {
                    *o += w * x;
                }
            }
            cumulative += w;
            // Stop once the tail is negligible (past the mode).
            if cumulative > 1.0 - 1e-12 && n as f64 > lt {
                break;
            }
            assert!(n < 1_000_000, "uniformisation did not converge (Λt = {lt})");
            v = self.step(&v);
            n += 1;
        }
        // Renormalise away the Poisson-tail truncation residue.
        let total: NeumaierSum = out.iter().cloned().collect();
        let total = total.value();
        for o in &mut out {
            *o /= total;
        }
        out
    }

    /// Expected class-`r` concurrency at time `t` (from empty).
    pub fn concurrency_at(&self, t: f64, r: usize) -> f64 {
        let pi = self.distribution(t);
        pi.iter()
            .zip(&self.states)
            .map(|(p, k)| p * k[r] as f64)
            .sum()
    }

    /// The paper's non-blocking probability `B_r` evaluated against
    /// `π(t)` — transient availability (from empty).
    pub fn availability_at(&self, t: f64, r: usize) -> f64 {
        let pi = self.distribution(t);
        pi.iter().zip(&self.avail).map(|(p, row)| p * row[r]).sum()
    }

    /// Smallest `t` (by doubling, then bisection) such that
    /// `‖π(t) − π(∞)‖₁ ≤ eps` from the empty start — the switch's
    /// relaxation time to its operating point.
    pub fn relaxation_time(&self, eps: f64) -> f64 {
        let stationary: Vec<f64> = {
            let brute = Brute::new(&self.model);
            brute.distribution().into_iter().map(|(_, p)| p).collect()
        };
        let dist = |t: f64| -> f64 {
            let pi = self.distribution(t);
            pi.iter().zip(&stationary).map(|(a, b)| (a - b).abs()).sum()
        };
        let mut hi = 1.0 / self.model.workload().classes()[0].mu;
        while dist(hi) > eps {
            hi *= 2.0;
            assert!(hi < 1e12, "no relaxation within horizon");
        }
        let mut lo = 0.0;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if dist(mid) > eps {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn small_model() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.1, 2.0));
        Model::new(Dims::square(3), w).unwrap()
    }

    #[test]
    fn distribution_is_stochastic_at_all_times() {
        let tr = Transient::new(&small_model());
        for &t in &[0.0, 0.1, 1.0, 10.0, 100.0] {
            let pi = tr.distribution(t);
            close(pi.iter().sum::<f64>(), 1.0, 1e-10);
            assert!(pi.iter().all(|&p| p >= -1e-15));
        }
    }

    #[test]
    fn t_zero_is_the_initial_state() {
        let tr = Transient::new(&small_model());
        let pi = tr.distribution(0.0);
        assert_eq!(pi[tr.empty_state()], 1.0);
    }

    #[test]
    fn converges_to_the_product_form() {
        let m = small_model();
        let tr = Transient::new(&m);
        let pi = tr.distribution(200.0);
        let brute = Brute::new(&m);
        for ((k, want), got) in brute.distribution().iter().zip(&pi) {
            close(*got, *want, 1e-6);
            let _ = k;
        }
    }

    #[test]
    fn invariant_under_uniformisation_rate() {
        // The defining correctness property of uniformisation: the answer
        // cannot depend on the chosen Λ.
        let m = small_model();
        let a = Transient::with_rate_margin(&m, 1.0);
        let b = Transient::with_rate_margin(&m, 3.7);
        for &t in &[0.3, 2.0, 9.0] {
            let pa = a.distribution(t);
            let pb = b.distribution(t);
            for (x, y) in pa.iter().zip(&pb) {
                close(*x, *y, 1e-9);
            }
        }
    }

    #[test]
    fn short_time_growth_matches_exit_rate_from_empty() {
        // d/dt E[k_total] at t = 0 equals the total accepted-arrival rate
        // out of the empty state.
        let m = small_model();
        let tr = Transient::new(&m);
        let dt = 1e-4;
        let classes = m.workload().classes();
        let expect: f64 = classes
            .iter()
            .map(|c| permutation(3, c.bandwidth as u64).powi(2) * c.lambda(0))
            .sum();
        let growth = (tr.concurrency_at(dt, 0) + tr.concurrency_at(dt, 1)) / dt;
        close(growth, expect, 1e-2);
    }

    #[test]
    fn availability_decays_from_one_to_stationary() {
        let m = small_model();
        let tr = Transient::new(&m);
        let b0 = tr.availability_at(0.0, 0);
        close(b0, 1.0, 1e-12); // empty switch: everything available
        let b_inf = tr.availability_at(300.0, 0);
        let stationary = Brute::new(&m).nonblocking(0);
        close(b_inf, stationary, 1e-6);
        // Monotone in between for this birth-death-ish start.
        let b1 = tr.availability_at(0.5, 0);
        let b2 = tr.availability_at(2.0, 0);
        assert!(b0 >= b1 && b1 >= b2 && b2 >= b_inf - 1e-9);
    }

    #[test]
    fn relaxation_time_is_a_few_holding_times() {
        let m = small_model();
        let tr = Transient::new(&m);
        let t = tr.relaxation_time(1e-4);
        // Light load: relaxation is governed by μ ≈ 1–2, so O(1–20).
        assert!(t > 0.1 && t < 50.0, "{t}");
        // And it really is inside the tolerance there.
        let pi = tr.distribution(t);
        let want: Vec<f64> = Brute::new(&m)
            .distribution()
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let l1: f64 = pi.iter().zip(&want).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 <= 1.2e-4, "{l1}");
    }

    #[test]
    fn custom_initial_distribution() {
        let m = small_model();
        let tr = Transient::new(&m);
        // Start at stationarity: must stay there.
        let stat: Vec<f64> = Brute::new(&m)
            .distribution()
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let pi = tr.distribution_from(&stat, 5.0);
        for (a, b) in pi.iter().zip(&stat) {
            close(*a, *b, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "state space too large")]
    fn rejects_huge_state_spaces() {
        // 5 unit-bandwidth classes on 64 ports: C(64+5,5)-ish ≈ 10⁷ states.
        let w = Workload::from_classes(vec![TrafficClass::poisson(0.1); 5]);
        let m = Model::new(Dims::square(64), w).unwrap();
        let _ = Transient::new(&m);
    }
}

//! Multi-lane recombination kernels for the diagonal-ray sweep.
//!
//! The hot loop of [`crate::SweepSolver`] — installing a class on a
//! leave-one-out ray and building derivative rays — is, per ray point
//! `d`, the strided dot product
//!
//! ```text
//! out[d] = seed(d) + Σ_{j ≥ 1, d + j·a < C+1} coef[j] · base[d + j·a]
//! ```
//!
//! Consecutive `d` share the whole `coef` table and read *contiguous*
//! slices `base[d + j·a ..]`, so blocking the loop over `d` into 8- and
//! 4-wide lanes turns every inner step into one broadcast (`coef[j]`),
//! one contiguous load, and one lane-wise multiply-add — a shape LLVM
//! reliably vectorises without any nightly `std::simd` dependency.
//!
//! Three kernels are runtime-dispatched via [`KernelMode`]:
//!
//! * [`KernelMode::Scalar`] — the PR 5 loop, one point at a time. The
//!   reference everything else is measured against.
//! * [`KernelMode::Strict`] (default) — hand-unrolled 8/4-lane blocks
//!   that keep **one accumulator per lane** and add terms in the exact
//!   scalar `j` order with plain mul-then-add (no FMA, no
//!   reassociation). Each lane performs literally the same arithmetic
//!   on the same values as the scalar loop, so the result is
//!   **bit-for-bit identical** — golden CSVs do not move.
//! * [`KernelMode::Fast`] — same blocking, but the `j` chain is split
//!   into two independent partial accumulators (even/odd `j`) combined
//!   at the end. The reassociation breaks the serial add dependency for
//!   ~2× more ILP at the cost of last-bit drift, validated ≤ 1e-12
//!   relative by the proptest battery in `simd_proptests.rs`.
//!
//! Mode resolution: thread-local override ([`with_kernel_mode`]) →
//! process-wide [`set_kernel_mode`] → `XBAR_SIMD` env (`scalar` |
//! `strict` | `fast`) → `Strict`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which recombination kernel [`combine`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// One ray point at a time — the PR 5 reference loop.
    Scalar = 0,
    /// 8/4-lane blocks, bit-for-bit equal to `Scalar` (default).
    Strict = 1,
    /// 8/4-lane blocks with a two-way split accumulator; ≤ 1e-12
    /// relative drift.
    Fast = 2,
}

impl KernelMode {
    /// Parse a mode name as accepted by `XBAR_SIMD`.
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s.trim() {
            "scalar" => Some(KernelMode::Scalar),
            "strict" => Some(KernelMode::Strict),
            "fast" => Some(KernelMode::Fast),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Option<KernelMode> {
        match v {
            0 => Some(KernelMode::Scalar),
            1 => Some(KernelMode::Strict),
            2 => Some(KernelMode::Fast),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Strict => "strict",
            KernelMode::Fast => "fast",
        })
    }
}

/// Process-wide mode; `u8::MAX` = unset (fall through to env/default).
static MODE: AtomicU8 = AtomicU8::new(u8::MAX);

thread_local! {
    /// Thread-local override; `u8::MAX` = no override.
    static MODE_OVERRIDE: Cell<u8> = const { Cell::new(u8::MAX) };
}

/// `XBAR_SIMD` is read once; unknown values fall back to `Strict`.
static ENV_MODE: OnceLock<KernelMode> = OnceLock::new();

fn env_mode() -> KernelMode {
    *ENV_MODE.get_or_init(|| {
        std::env::var("XBAR_SIMD")
            .ok()
            .and_then(|v| KernelMode::parse(&v))
            .unwrap_or(KernelMode::Strict)
    })
}

/// Set the process-wide kernel mode (the CLI's `--simd` flag lands
/// here).
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Resolve the kernel mode for this thread, per the module-level
/// precedence.
pub fn kernel_mode() -> KernelMode {
    if let Some(m) = KernelMode::from_u8(MODE_OVERRIDE.with(Cell::get)) {
        return m;
    }
    if let Some(m) = KernelMode::from_u8(MODE.load(Ordering::Relaxed)) {
        return m;
    }
    env_mode()
}

/// Run `f` with the kernel mode pinned on this thread (restored on
/// exit, panic included) — how tests compare kernels in isolation.
pub fn with_kernel_mode<T>(mode: KernelMode, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = MODE_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(mode as u8);
        Restore(prev)
    });
    f()
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// `out[d] = (seed_base ? base[d] : 0) + Σ_{j≥1} coef[j]·base[d + j·a]`
/// for every `d`, truncated at the ray end, dispatched per
/// [`kernel_mode`]. `coef` must cover `j = 0 ..= (len−1)/a`.
pub fn combine(base: &[f64], coef: &[f64], a: usize, seed_base: bool) -> Vec<f64> {
    match kernel_mode() {
        KernelMode::Scalar => combine_scalar(base, coef, a, seed_base),
        KernelMode::Strict => combine_strict(base, coef, a, seed_base),
        KernelMode::Fast => combine_fast(base, coef, a, seed_base),
    }
}

#[inline]
fn scalar_point(base: &[f64], coef: &[f64], a: usize, d: usize, seed_base: bool) -> f64 {
    let len = base.len();
    let mut acc = if seed_base { base[d] } else { 0.0 };
    let mut j = 1;
    let mut idx = d + a;
    while idx < len {
        acc += coef[j] * base[idx];
        j += 1;
        idx += a;
    }
    acc
}

/// The reference point-at-a-time kernel (identical arithmetic to the
/// generic `RayScalar` loop in `sweep.rs`).
pub fn combine_scalar(base: &[f64], coef: &[f64], a: usize, seed_base: bool) -> Vec<f64> {
    (0..base.len())
        .map(|d| scalar_point(base, coef, a, d, seed_base))
        .collect()
}

/// One `L`-wide block of the strict kernel: lane `l` accumulates ray
/// point `d0 + l` with a single accumulator in exact scalar `j` order,
/// so each lane is bit-for-bit the scalar loop.
#[inline]
fn block_strict<const L: usize>(
    out: &mut [f64],
    base: &[f64],
    coef: &[f64],
    a: usize,
    d0: usize,
    seed_base: bool,
) {
    let len = base.len();
    let mut acc = [0.0f64; L];
    if seed_base {
        acc.copy_from_slice(&base[d0..d0 + L]);
    }
    let mut j = 1;
    let mut idx = d0 + a;
    // Full-width steps: every lane's term is in range, one broadcast ×
    // contiguous load × lane-wise mul-add (the vectorised body).
    while idx + L <= len {
        let c = coef[j];
        let lanes = &base[idx..idx + L];
        for l in 0..L {
            acc[l] += c * lanes[l];
        }
        j += 1;
        idx += a;
    }
    // Ragged tail: lane `l` is active while `idx + l < len`, matching
    // the scalar loop's exact stopping point per lane.
    while idx < len {
        let c = coef[j];
        for (l, b) in base[idx..].iter().enumerate() {
            acc[l] += c * b;
        }
        j += 1;
        idx += a;
    }
    out.copy_from_slice(&acc);
}

/// Hand-unrolled 8/4-lane kernel, bit-for-bit equal to
/// [`combine_scalar`].
pub fn combine_strict(base: &[f64], coef: &[f64], a: usize, seed_base: bool) -> Vec<f64> {
    let len = base.len();
    let mut out = vec![0.0; len];
    let mut d = 0;
    while len - d >= 8 {
        block_strict::<8>(&mut out[d..d + 8], base, coef, a, d, seed_base);
        d += 8;
    }
    while len - d >= 4 {
        block_strict::<4>(&mut out[d..d + 4], base, coef, a, d, seed_base);
        d += 4;
    }
    while d < len {
        out[d] = scalar_point(base, coef, a, d, seed_base);
        d += 1;
    }
    out
}

/// One `L`-wide block of the fast kernel: the `j` chain is split into
/// two independent accumulators (even/odd steps) combined at the end —
/// reassociated, so not bit-identical, but ≤ 1e-12 relative.
#[inline]
fn block_fast<const L: usize>(
    out: &mut [f64],
    base: &[f64],
    coef: &[f64],
    a: usize,
    d0: usize,
    seed_base: bool,
) {
    let len = base.len();
    let mut acc0 = [0.0f64; L];
    let mut acc1 = [0.0f64; L];
    if seed_base {
        acc0.copy_from_slice(&base[d0..d0 + L]);
    }
    let mut j = 1;
    let mut idx = d0 + a;
    while idx + a + L <= len {
        let c0 = coef[j];
        let c1 = coef[j + 1];
        let lanes0 = &base[idx..idx + L];
        let lanes1 = &base[idx + a..idx + a + L];
        for l in 0..L {
            acc0[l] += c0 * lanes0[l];
        }
        for l in 0..L {
            acc1[l] += c1 * lanes1[l];
        }
        j += 2;
        idx += 2 * a;
    }
    while idx + L <= len {
        let c = coef[j];
        let lanes = &base[idx..idx + L];
        for l in 0..L {
            acc0[l] += c * lanes[l];
        }
        j += 1;
        idx += a;
    }
    while idx < len {
        let c = coef[j];
        for (l, b) in base[idx..].iter().enumerate() {
            acc0[l] += c * b;
        }
        j += 1;
        idx += a;
    }
    for l in 0..L {
        out[l] = acc0[l] + acc1[l];
    }
}

/// Hand-unrolled 8/4-lane kernel with a two-way split accumulator;
/// fastest, within 1e-12 relative of [`combine_scalar`].
pub fn combine_fast(base: &[f64], coef: &[f64], a: usize, seed_base: bool) -> Vec<f64> {
    let len = base.len();
    let mut out = vec![0.0; len];
    let mut d = 0;
    while len - d >= 8 {
        block_fast::<8>(&mut out[d..d + 8], base, coef, a, d, seed_base);
        d += 8;
    }
    while len - d >= 4 {
        block_fast::<4>(&mut out[d..d + 4], base, coef, a, d, seed_base);
        d += 4;
    }
    while d < len {
        out[d] = scalar_point(base, coef, a, d, seed_base);
        d += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(len: usize) -> (Vec<f64>, Vec<f64>) {
        // Deterministic pseudo-random positive values with the decaying
        // magnitude profile real rays have.
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let base: Vec<f64> = (0..len)
            .map(|d| (0.5 + next()) * (-(d as f64) / 7.0).exp())
            .collect();
        let coef: Vec<f64> = (0..len)
            .map(|j| next() * (-(j as f64) / 3.0).exp())
            .collect();
        (base, coef)
    }

    #[test]
    fn strict_is_bit_for_bit_scalar() {
        for len in [0usize, 1, 3, 4, 5, 8, 9, 13, 16, 31, 97, 129, 257] {
            for a in [1usize, 2, 3, 5] {
                let (base, coef) = fixture(len.max(1));
                let base = &base[..len];
                for seed in [true, false] {
                    let s = combine_scalar(base, &coef, a, seed);
                    let v = combine_strict(base, &coef, a, seed);
                    for (d, (x, y)) in s.iter().zip(&v).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "len={len} a={a} seed={seed} d={d}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fast_is_close_to_scalar() {
        for len in [5usize, 8, 13, 64, 129, 257] {
            for a in [1usize, 2, 3] {
                let (base, coef) = fixture(len);
                for seed in [true, false] {
                    let s = combine_scalar(&base, &coef, a, seed);
                    let v = combine_fast(&base, &coef, a, seed);
                    for (d, (x, y)) in s.iter().zip(&v).enumerate() {
                        let scale = x.abs().max(1e-300);
                        assert!(
                            ((x - y) / scale).abs() <= 1e-12,
                            "len={len} a={a} seed={seed} d={d}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mode_resolution_and_override() {
        // TLS override wins and restores, panic included.
        let before = kernel_mode();
        let inner = with_kernel_mode(KernelMode::Scalar, kernel_mode);
        assert_eq!(inner, KernelMode::Scalar);
        assert_eq!(kernel_mode(), before);
        let result = std::panic::catch_unwind(|| {
            with_kernel_mode(KernelMode::Fast, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(kernel_mode(), before);
    }

    #[test]
    fn parses_mode_names() {
        assert_eq!(KernelMode::parse("scalar"), Some(KernelMode::Scalar));
        assert_eq!(KernelMode::parse(" strict "), Some(KernelMode::Strict));
        assert_eq!(KernelMode::parse("fast"), Some(KernelMode::Fast));
        assert_eq!(KernelMode::parse("avx512"), None);
        for m in [KernelMode::Scalar, KernelMode::Strict, KernelMode::Fast] {
            assert_eq!(KernelMode::parse(&m.to_string()), Some(m));
        }
    }

    #[test]
    fn dispatch_routes_to_the_selected_kernel() {
        let (base, coef) = fixture(37);
        let strict = with_kernel_mode(KernelMode::Strict, || combine(&base, &coef, 2, true));
        let scalar = with_kernel_mode(KernelMode::Scalar, || combine(&base, &coef, 2, true));
        assert_eq!(strict, scalar);
        let fast = with_kernel_mode(KernelMode::Fast, || combine(&base, &coef, 2, true));
        for (x, y) in scalar.iter().zip(&fast) {
            assert!(((x - y) / x.abs().max(1e-300)).abs() <= 1e-12);
        }
    }
}

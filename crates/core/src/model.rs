//! Switch geometry and the analysed [`Model`] (geometry + workload).

use std::fmt;

use xbar_traffic::{TrafficError, Workload};

/// Crossbar dimensions: `N1` inputs × `N2` outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dims {
    /// Number of input ports `N1 ≥ 1`.
    pub n1: u32,
    /// Number of output ports `N2 ≥ 1`.
    pub n2: u32,
}

impl Dims {
    /// An `n1 × n2` crossbar.
    pub fn new(n1: u32, n2: u32) -> Self {
        Dims { n1, n2 }
    }

    /// A square `n × n` crossbar (the shape in all of the paper's plots).
    pub fn square(n: u32) -> Self {
        Dims { n1: n, n2: n }
    }

    /// `min(N1, N2)` — the connection capacity bound defining `Γ(N)`.
    pub fn min_n(&self) -> u32 {
        self.n1.min(self.n2)
    }

    /// `max(N1, N2)` — the bound used in the Bernoulli validity condition.
    pub fn max_n(&self) -> u32 {
        self.n1.max(self.n2)
    }

    /// Shrink both sides by `a·t` (the `N − t·a_r·I` of the measure
    /// recursions). Returns `None` if either side would go negative.
    pub fn shrink(&self, by: u32) -> Option<Dims> {
        if self.n1 >= by && self.n2 >= by {
            Some(Dims {
                n1: self.n1 - by,
                n2: self.n2 - by,
            })
        } else {
            None
        }
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.n1, self.n2)
    }
}

/// Why a [`Model`] could not be constructed.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A dimension is zero.
    EmptySwitch,
    /// The workload has no classes — the system is trivially empty; the
    /// measures the library reports would all be degenerate, so we reject
    /// early rather than return NaN-prone results.
    EmptyWorkload,
    /// A class failed BPP validation (index, cause).
    BadClass(usize, TrafficError),
    /// A class's bandwidth `a_r` exceeds `min(N1, N2)`: no connection of the
    /// class could ever be carried.
    BandwidthExceedsSwitch {
        /// Index of the offending class.
        class: usize,
        /// Its bandwidth `a_r`.
        bandwidth: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptySwitch => write!(f, "switch must have N1 >= 1 and N2 >= 1"),
            ModelError::EmptyWorkload => write!(f, "workload has no traffic classes"),
            ModelError::BadClass(r, e) => write!(f, "class {r}: {e}"),
            ModelError::BandwidthExceedsSwitch { class, bandwidth } => write!(
                f,
                "class {class}: bandwidth {bandwidth} exceeds min(N1,N2); it can never be carried"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// A fully-validated analysis instance: geometry plus traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct Model {
    dims: Dims,
    workload: Workload,
}

impl Model {
    /// Validate and construct.
    pub fn new(dims: Dims, workload: Workload) -> Result<Self, ModelError> {
        if dims.n1 == 0 || dims.n2 == 0 {
            return Err(ModelError::EmptySwitch);
        }
        if workload.is_empty() {
            return Err(ModelError::EmptyWorkload);
        }
        workload
            .validate(dims.max_n())
            .map_err(|(r, e)| ModelError::BadClass(r, e))?;
        for (r, c) in workload.classes().iter().enumerate() {
            if c.bandwidth > dims.min_n() {
                return Err(ModelError::BandwidthExceedsSwitch {
                    class: r,
                    bandwidth: c.bandwidth,
                });
            }
        }
        Ok(Model { dims, workload })
    }

    /// The switch geometry.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The traffic classes.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Number of classes `R`.
    pub fn num_classes(&self) -> usize {
        self.workload.len()
    }

    /// A copy of the model with different dimensions (same workload in
    /// per-set parameters — used by the `W(N − a_r·I)` terms of the revenue
    /// gradient, where the paper holds per-set rates fixed).
    pub fn with_dims(&self, dims: Dims) -> Result<Self, ModelError> {
        Model::new(dims, self.workload.clone())
    }

    /// A copy with one class's `β/μ` nudged (used by the forward-difference
    /// gradients of §4): replaces `β_r` by `x·μ_r` where `x` is the new
    /// `β_r/μ_r` value.
    ///
    /// Deliberately skips BPP re-validation: the normalisation constant is a
    /// polynomial in `β`, so the finite difference of its analytic
    /// continuation is exactly the derivative the paper approximates — even
    /// when the nudged `β` would fail, say, the Bernoulli integral-source
    /// check by an infinitesimal amount.
    pub fn with_beta_over_mu(&self, r: usize, x: f64) -> Result<Self, ModelError> {
        let mut classes = self.workload.classes().to_vec();
        classes[r].beta = x * classes[r].mu;
        Ok(Model {
            dims: self.dims,
            workload: Workload::from_classes(classes),
        })
    }

    /// A copy with one class's per-set offered load `ρ_r = α_r/μ_r` set to
    /// `x` (holding `μ_r` fixed, so `α_r = x·μ_r`). Like
    /// [`Model::with_beta_over_mu`], skips re-validation so finite
    /// differences act on the analytic continuation.
    pub fn with_rho(&self, r: usize, x: f64) -> Result<Self, ModelError> {
        let mut classes = self.workload.classes().to_vec();
        classes[r].alpha = x * classes[r].mu;
        Ok(Model {
            dims: self.dims,
            workload: Workload::from_classes(classes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_traffic::TrafficClass;

    #[test]
    fn dims_helpers() {
        let d = Dims::new(4, 7);
        assert_eq!(d.min_n(), 4);
        assert_eq!(d.max_n(), 7);
        assert_eq!(d.shrink(2), Some(Dims::new(2, 5)));
        assert_eq!(d.shrink(5), None);
        assert_eq!(format!("{d}"), "4x7");
        assert_eq!(Dims::square(8), Dims::new(8, 8));
    }

    #[test]
    fn model_validates_geometry() {
        let w = Workload::new().with(TrafficClass::poisson(0.1));
        assert_eq!(
            Model::new(Dims::new(0, 4), w.clone()).unwrap_err(),
            ModelError::EmptySwitch
        );
        assert!(Model::new(Dims::new(4, 4), w).is_ok());
    }

    #[test]
    fn model_rejects_empty_workload() {
        assert_eq!(
            Model::new(Dims::square(4), Workload::new()).unwrap_err(),
            ModelError::EmptyWorkload
        );
    }

    #[test]
    fn model_rejects_oversized_bandwidth() {
        let w = Workload::new().with(TrafficClass::poisson(0.1).with_bandwidth(5));
        assert!(matches!(
            Model::new(Dims::new(4, 8), w).unwrap_err(),
            ModelError::BandwidthExceedsSwitch { class: 0, .. }
        ));
    }

    #[test]
    fn model_propagates_class_validation() {
        let w = Workload::new().with(TrafficClass::bpp(1.0, 2.0, 1.0)); // unstable
        assert!(matches!(
            Model::new(Dims::square(4), w).unwrap_err(),
            ModelError::BadClass(0, _)
        ));
    }

    #[test]
    fn perturbation_helpers() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1))
            .with(TrafficClass::bpp(0.1, 0.05, 2.0));
        let m = Model::new(Dims::square(8), w).unwrap();

        let m2 = m.with_beta_over_mu(1, 0.05).unwrap();
        assert!((m2.workload().classes()[1].beta - 0.1).abs() < 1e-15);

        let m3 = m.with_rho(0, 0.3).unwrap();
        assert!((m3.workload().classes()[0].alpha - 0.3).abs() < 1e-15);

        let m4 = m.with_dims(Dims::square(4)).unwrap();
        assert_eq!(m4.dims().n1, 4);
        assert_eq!(m4.workload(), m.workload());
    }

    #[test]
    fn error_display() {
        let e = ModelError::BandwidthExceedsSwitch {
            class: 2,
            bandwidth: 9,
        };
        assert!(format!("{e}").contains("class 2"));
    }
}

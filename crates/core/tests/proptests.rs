//! Property-based cross-validation of the solver algorithms.
//!
//! The central invariant of the whole crate: for *any* valid workload,
//! brute-force enumeration of the product form, Algorithm 1 (all three
//! numeric backends) and Algorithm 2 must agree on every performance
//! measure.

use proptest::prelude::*;

use xbar_core::brute::Brute;
use xbar_core::{solve, solve_resilient, Algorithm, Dims, Model, ResilientConfig};
use xbar_traffic::{TrafficClass, Workload};

fn close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() / scale < tol
}

/// A random valid traffic class for a switch with `max_n` ports.
fn arb_class(max_n: u32) -> impl Strategy<Value = TrafficClass> {
    let poisson =
        (0.001f64..2.0, 0.2f64..3.0, 1u32..3, 0.01f64..2.0).prop_map(|(rho, mu, a, w)| {
            TrafficClass::bpp(rho * mu, 0.0, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let pascal = (
        0.001f64..1.5,
        0.05f64..0.9,
        0.5f64..2.0,
        1u32..3,
        0.01f64..2.0,
    )
        .prop_map(|(alpha, frac, mu, a, w)| {
            // β = frac·μ keeps the class stable.
            TrafficClass::bpp(alpha, frac * mu, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let bernoulli = (1u64..6, 0.01f64..0.5, 0.5f64..2.0, 0.01f64..2.0).prop_map(
        move |(extra, p_rate, mu, w)| {
            // S = max_n + extra sources, each with rate p_rate:
            // α = S·p, β = −p  ⇒ integral population ≥ max_n.
            let s = (max_n as u64 + extra) as f64;
            TrafficClass::bpp(s * p_rate, -p_rate, mu).with_weight(w)
        },
    );
    prop_oneof![poisson, pascal, bernoulli]
}

fn arb_model() -> impl Strategy<Value = Model> {
    (2u32..7, 2u32..7).prop_flat_map(|(n1, n2)| {
        let max_n = n1.max(n2);
        prop::collection::vec(arb_class(max_n), 1..4).prop_filter_map(
            "classes must fit switch",
            move |classes| {
                let min_n = n1.min(n2);
                if classes.iter().any(|c| c.bandwidth > min_n) {
                    return None;
                }
                Model::new(Dims::new(n1, n2), Workload::from_classes(classes)).ok()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_match_brute_force(model in arb_model()) {
        let brute = Brute::new(&model);
        let r_count = model.num_classes();
        for alg in [
            Algorithm::Alg1F64,
            Algorithm::Alg1Scaled,
            Algorithm::Alg1Ext,
            Algorithm::Mva,
            Algorithm::Convolution,
        ] {
            let sol = solve(&model, alg).unwrap();
            for r in 0..r_count {
                prop_assert!(
                    close(sol.nonblocking(r), brute.nonblocking(r), 1e-8),
                    "alg {alg} nonblocking class {r}: {} vs {}",
                    sol.nonblocking(r), brute.nonblocking(r)
                );
                prop_assert!(
                    close(sol.concurrency(r), brute.concurrency(r), 1e-8),
                    "alg {alg} concurrency class {r}: {} vs {}",
                    sol.concurrency(r), brute.concurrency(r)
                );
            }
            prop_assert!(close(sol.revenue(), brute.revenue(), 1e-8));
        }
    }

    #[test]
    fn probabilities_are_probabilities(model in arb_model()) {
        let sol = solve(&model, Algorithm::Alg1Ext).unwrap();
        for r in 0..model.num_classes() {
            let b = sol.nonblocking(r);
            prop_assert!((0.0..=1.0).contains(&b), "B_{r} = {b}");
            let acc = sol.call_acceptance(r);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&acc), "acc_{r} = {acc}");
            prop_assert!(sol.concurrency(r) >= 0.0);
        }
    }

    #[test]
    fn occupancy_and_marginals_are_distributions(model in arb_model()) {
        let sol = solve(&model, Algorithm::Convolution).unwrap();
        let occ = sol.occupancy_distribution();
        prop_assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(occ.iter().all(|&p| p >= -1e-15));
        for r in 0..model.num_classes() {
            let marg = sol.class_marginal(r);
            prop_assert!((marg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Marginal mean must equal the concurrency measure.
            let mean: f64 = marg.iter().enumerate().map(|(j, p)| j as f64 * p).sum();
            let e = sol.concurrency(r);
            prop_assert!((mean - e).abs() < 1e-8 * (1.0 + e), "{mean} vs {e}");
        }
    }

    #[test]
    fn detailed_balance_always_holds(model in arb_model()) {
        let brute = Brute::new(&model);
        prop_assert!(brute.detailed_balance_violation() < 1e-10);
    }

    #[test]
    fn concurrency_bounded_by_capacity(model in arb_model()) {
        // Σ_r a_r·E_r ≤ min(N1,N2): can't hold more connections than ports.
        let sol = solve(&model, Algorithm::Alg1Ext).unwrap();
        let total: f64 = model
            .workload()
            .classes()
            .iter()
            .enumerate()
            .map(|(r, c)| c.bandwidth as f64 * sol.concurrency(r))
            .sum();
        prop_assert!(total <= model.dims().min_n() as f64 + 1e-9, "{total}");
    }

    #[test]
    fn blocking_monotone_in_any_poisson_load(
        n in 3u32..7,
        rho in 0.05f64..1.0,
        bump in 0.05f64..1.0,
    ) {
        // More offered load ⇒ more blocking (single Poisson class).
        let mk = |r: f64| {
            let w = Workload::new().with(TrafficClass::poisson(r));
            Model::new(Dims::square(n), w).unwrap()
        };
        let lo = solve(&mk(rho), Algorithm::Alg1F64).unwrap().blocking(0);
        let hi = solve(&mk(rho + bump), Algorithm::Alg1F64).unwrap().blocking(0);
        prop_assert!(hi >= lo - 1e-12, "{hi} < {lo}");
    }

    #[test]
    fn blocking_increases_with_switch_size_at_fixed_per_input_load(
        n in 2u32..6,
        rho_tilde in 0.01f64..0.8,
    ) {
        // At fixed aggregate per-input load ρ̃, a bigger switch blocks
        // *more*: an arrival needs its one specific input and one specific
        // output simultaneously free, and port utilisation stays ≈ ρ̃ while
        // the single-resource sharing advantage of a small fabric fades.
        // This is the rising-to-asymptote shape of paper Figs 1–2 and the
        // N-trend of Table 2.
        let mk = |n: u32| {
            let w = Workload::new().with(TrafficClass::poisson(rho_tilde / n as f64));
            Model::new(Dims::square(n), w).unwrap()
        };
        let small = solve(&mk(n), Algorithm::Alg1F64).unwrap().blocking(0);
        let large = solve(&mk(2 * n), Algorithm::Alg1F64).unwrap().blocking(0);
        prop_assert!(large >= small - 1e-12, "{large} < {small}");
    }

    #[test]
    fn peakier_traffic_blocks_more(
        n in 2u32..7,
        alpha in 0.01f64..0.5,
        beta in 0.01f64..0.8,
    ) {
        // Pascal (β > 0) blocking ≥ Poisson blocking at the same α, μ —
        // the headline claim of paper Fig 2.
        let poisson = Workload::new().with(TrafficClass::poisson(alpha));
        let pascal = Workload::new().with(TrafficClass::bpp(alpha, beta, 1.0));
        let mp = Model::new(Dims::square(n), poisson).unwrap();
        let mb = Model::new(Dims::square(n), pascal).unwrap();
        let bp = solve(&mp, Algorithm::Alg1F64).unwrap().blocking(0);
        let bb = solve(&mb, Algorithm::Alg1F64).unwrap().blocking(0);
        prop_assert!(bb >= bp - 1e-12, "pascal {bb} < poisson {bp}");
    }

    #[test]
    fn smoother_traffic_blocks_less(
        n in 2u32..7,
        p_rate in 0.01f64..0.3,
        extra in 1u64..8,
    ) {
        // Bernoulli (β < 0) blocking ≤ Poisson blocking at the same α —
        // paper Fig 1's "Poisson is an upper bound for smooth traffic".
        let s = (n as u64 + extra) as f64;
        let alpha = s * p_rate;
        let bern = Workload::new().with(TrafficClass::bpp(alpha, -p_rate, 1.0));
        let pois = Workload::new().with(TrafficClass::poisson(alpha));
        let mb = Model::new(Dims::square(n), bern).unwrap();
        let mp = Model::new(Dims::square(n), pois).unwrap();
        let bb = solve(&mb, Algorithm::Alg1F64).unwrap().blocking(0);
        let bp = solve(&mp, Algorithm::Alg1F64).unwrap().blocking(0);
        prop_assert!(bb <= bp + 1e-12, "bernoulli {bb} > poisson {bp}");
    }

    #[test]
    fn wider_bandwidth_blocks_more_at_equal_connection_load(
        n in 4u32..8,
        load in 0.01f64..0.5,
    ) {
        // Paper Fig 4: a = 2 requests block more than a = 1 at matched
        // offered connection load (per-set ρ chosen so a·ρ is constant).
        let w1 = Workload::new().with(TrafficClass::poisson(load));
        let w2 = Workload::new().with(TrafficClass::poisson(load / 2.0).with_bandwidth(2));
        let m1 = Model::new(Dims::square(n), w1).unwrap();
        let m2 = Model::new(Dims::square(n), w2).unwrap();
        let b1 = solve(&m1, Algorithm::Alg1F64).unwrap().blocking(0);
        let b2 = solve(&m2, Algorithm::Alg1F64).unwrap().blocking(0);
        prop_assert!(b2 >= b1 - 1e-12, "a=2 {b2} < a=1 {b1}");
    }

    #[test]
    fn resilient_pipeline_matches_alg1_ext(model in arb_model()) {
        // Whatever backend the escalation chain settles on, the resilient
        // pipeline's answer must agree with the always-correct
        // extended-range backend — and the report must name a winner that
        // actually appears in the attempt list.
        let res = solve_resilient(&model, &ResilientConfig::default()).unwrap();
        let reference = solve(&model, Algorithm::Alg1Ext).unwrap();
        for r in 0..model.num_classes() {
            prop_assert!(
                close(res.solution.nonblocking(r), reference.nonblocking(r), 1e-8),
                "nonblocking class {r}: {} vs {}",
                res.solution.nonblocking(r), reference.nonblocking(r)
            );
            prop_assert!(
                close(res.solution.concurrency(r), reference.concurrency(r), 1e-8),
                "concurrency class {r}: {} vs {}",
                res.solution.concurrency(r), reference.concurrency(r)
            );
        }
        prop_assert!(close(res.solution.revenue(), reference.revenue(), 1e-8));
        let winner = res.report.winner.expect("pipeline succeeded");
        prop_assert!(
            res.report.attempts.iter().any(|a| a.algorithm == winner && a.failure.is_none()),
            "winner {winner} missing from attempts: {}",
            res.report.summary()
        );
    }

    #[test]
    fn resilient_pipeline_matches_brute_force_escalating(model in arb_model()) {
        // Force the chain to *start* from a backend that can fail (f64) and
        // verify the final answer against exact enumeration.
        let config = ResilientConfig::new()
            .with_chain(vec![Algorithm::Alg1F64, Algorithm::Alg1Ext]);
        let res = solve_resilient(&model, &config).unwrap();
        let brute = Brute::new(&model);
        for r in 0..model.num_classes() {
            prop_assert!(
                close(res.solution.nonblocking(r), brute.nonblocking(r), 1e-8),
                "class {r}: {} vs {}",
                res.solution.nonblocking(r), brute.nonblocking(r)
            );
        }
    }

    #[test]
    fn insensitivity_to_mu_at_fixed_rho(
        n in 2u32..6,
        rho in 0.05f64..1.0,
        mu in 0.1f64..10.0,
    ) {
        // Blocking depends on ρ = α/μ only (for Poisson classes): scaling
        // α and μ together changes nothing.
        let w1 = Workload::new().with(TrafficClass::poisson(rho));
        let w2 = Workload::new().with(TrafficClass::bpp(rho * mu, 0.0, mu));
        let m1 = Model::new(Dims::square(n), w1).unwrap();
        let m2 = Model::new(Dims::square(n), w2).unwrap();
        let b1 = solve(&m1, Algorithm::Alg1F64).unwrap().blocking(0);
        let b2 = solve(&m2, Algorithm::Alg1F64).unwrap().blocking(0);
        prop_assert!(close(b1, b2, 1e-10));
    }
}

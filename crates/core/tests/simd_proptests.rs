//! Property battery for the multi-lane sweep recombination kernels.
//!
//! The contract under test: `strict` mode is **bit-for-bit** equal to
//! the scalar reference kernel (same multiply/add order per output
//! point, only blocked across independent points), and `fast` mode
//! (reassociated accumulation) stays within 1e-12 relative gap — at the
//! raw kernel level for arbitrary lane remainders, and end-to-end
//! through [`SweepSolver`] recombinations on random models across all
//! three Algorithm-1 backends.

use proptest::prelude::*;

use xbar_core::simd::{combine_fast, combine_scalar, combine_strict};
use xbar_core::{with_kernel_mode, Algorithm, Dims, KernelMode, Model, SweepSolver};
use xbar_numeric::guard::relative_gap;
use xbar_traffic::{TrafficClass, Workload};

/// Ray-like values spanning many magnitudes (the scaled lattice keeps
/// entries near probability scale, but derivative rays mix signs).
fn arb_vals(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-1e3f64..1e3).prop_map(|v| v * 1e-3), len..=len)
}

/// A random valid traffic class for a switch with `max_n` ports.
fn arb_class(max_n: u32) -> impl Strategy<Value = TrafficClass> {
    let poisson =
        (0.001f64..2.0, 0.2f64..3.0, 1u32..4, 0.01f64..2.0).prop_map(|(rho, mu, a, w)| {
            TrafficClass::bpp(rho * mu, 0.0, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let pascal = (
        0.001f64..1.5,
        0.05f64..0.9,
        0.5f64..2.0,
        1u32..4,
        0.01f64..2.0,
    )
        .prop_map(|(alpha, frac, mu, a, w)| {
            TrafficClass::bpp(alpha, frac * mu, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let bernoulli = (1u64..6, 0.01f64..0.5, 0.5f64..2.0, 0.01f64..2.0).prop_map(
        move |(extra, p_rate, mu, w)| {
            let s = (max_n as u64 + extra) as f64;
            TrafficClass::bpp(s * p_rate, -p_rate, mu).with_weight(w)
        },
    );
    prop_oneof![poisson, pascal, bernoulli]
}

/// Random models whose ray length `min(N1, N2) + 1` deliberately hits
/// every lane remainder of the 8/4-lane blocks (not just multiples).
fn arb_model() -> impl Strategy<Value = Model> {
    (2u32..24, 2u32..24).prop_flat_map(|(n1, n2)| {
        let max_n = n1.max(n2);
        prop::collection::vec(arb_class(max_n), 1..4).prop_filter_map(
            "classes must fit switch",
            move |classes| {
                let min_n = n1.min(n2);
                if classes.iter().any(|c| c.bandwidth > min_n) {
                    return None;
                }
                Model::new(Dims::new(n1, n2), Workload::from_classes(classes)).ok()
            },
        )
    })
}

/// Blocking per class plus revenue — the full visible surface of one
/// recombination, as raw bits for exact comparison.
fn measure_bits(sol: &xbar_core::SweepSolution, classes: usize) -> Vec<u64> {
    let mut out: Vec<u64> = (0..classes).map(|r| sol.blocking(r).to_bits()).collect();
    out.push(sol.revenue().to_bits());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn strict_kernel_is_bit_for_bit_scalar(
        len in 0usize..300,
        a in 1usize..6,
        seed_base in prop::bool::ANY,
        seed in 1u64..u64::MAX,
    ) {
        let mut gen = seed;
        let mut next = move || {
            // xorshift64: deterministic per-case values at every length,
            // including the ragged lane tails.
            gen ^= gen << 13;
            gen ^= gen >> 7;
            gen ^= gen << 17;
            (gen >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let base: Vec<f64> = (0..len).map(|_| next()).collect();
        let coef: Vec<f64> = (0..len + 1).map(|_| next()).collect();
        let strict = combine_strict(&base, &coef, a, seed_base);
        let scalar = combine_scalar(&base, &coef, a, seed_base);
        prop_assert_eq!(strict.len(), scalar.len());
        for (d, (s, r)) in strict.iter().zip(&scalar).enumerate() {
            prop_assert_eq!(
                s.to_bits(), r.to_bits(),
                "strict[{}] {} != scalar {} (len {}, a {})", d, s, r, len, a
            );
        }
    }

    #[test]
    fn fast_kernel_stays_within_1e12_of_scalar(
        base in arb_vals(257),
        coef in arb_vals(258),
        a in 1usize..6,
        seed_base in prop::bool::ANY,
        len in 0usize..257,
    ) {
        let fast = combine_fast(&base[..len], &coef, a, seed_base);
        let scalar = combine_scalar(&base[..len], &coef, a, seed_base);
        for (d, (f, r)) in fast.iter().zip(&scalar).enumerate() {
            let gap = relative_gap(*f, *r);
            prop_assert!(
                gap <= 1e-12,
                "fast[{}] {} vs scalar {} gap {} (len {}, a {})", d, f, r, gap, len, a
            );
        }
    }

    #[test]
    fn strict_recombination_matches_scalar_across_backends(
        model in arb_model(),
        backend in prop_oneof![
            Just(Algorithm::Alg1F64),
            Just(Algorithm::Alg1Scaled),
            Just(Algorithm::Alg1Ext),
        ],
        r_pick in 0usize..16,
        rho in 0.001f64..2.0,
    ) {
        let classes = model.num_classes();
        let r = r_pick % classes;
        let sweep = SweepSolver::new(&model, backend).unwrap();
        let scalar = with_kernel_mode(KernelMode::Scalar, || sweep.solve_with_rho(r, rho));
        let strict = with_kernel_mode(KernelMode::Strict, || sweep.solve_with_rho(r, rho));
        // Bit-for-bit extends to the health check: the strict kernel must
        // succeed and fail on exactly the same points as scalar.
        match (scalar, strict) {
            (Ok(scalar), Ok(strict)) => prop_assert_eq!(
                measure_bits(&strict, classes),
                measure_bits(&scalar, classes),
                "strict must be bit-for-bit scalar on {} ({})", model.dims(), backend
            ),
            (Err(_), Err(_)) => {}
            (s, t) => prop_assert!(
                false,
                "strict and scalar disagree on solvability: {:?} vs {:?}", t.is_ok(), s.is_ok()
            ),
        }
    }

    #[test]
    fn fast_recombination_stays_within_1e12_across_backends(
        model in arb_model(),
        backend in prop_oneof![
            Just(Algorithm::Alg1F64),
            Just(Algorithm::Alg1Scaled),
            Just(Algorithm::Alg1Ext),
        ],
        r_pick in 0usize..16,
        rho in 0.001f64..2.0,
    ) {
        let classes = model.num_classes();
        let r = r_pick % classes;
        let sweep = SweepSolver::new(&model, backend).unwrap();
        let scalar = with_kernel_mode(KernelMode::Scalar, || sweep.solve_with_rho(r, rho));
        let fast = with_kernel_mode(KernelMode::Fast, || sweep.solve_with_rho(r, rho));
        // Near-underflow points may pass the health check in one mode and
        // not the other (fast's reassociation can land a hair past the
        // positivity gate); the 1e-12 claim only covers solvable points.
        prop_assume!(scalar.is_ok() && fast.is_ok());
        let (scalar, fast) = (scalar.unwrap(), fast.unwrap());
        for c in 0..classes {
            let gap = relative_gap(fast.blocking(c), scalar.blocking(c));
            prop_assert!(
                gap <= 1e-12,
                "fast blocking({}) {} vs {} gap {} on {} ({})",
                c, fast.blocking(c), scalar.blocking(c), gap, model.dims(), backend
            );
        }
        let gap = relative_gap(fast.revenue(), scalar.revenue());
        prop_assert!(gap <= 1e-12, "fast revenue gap {}", gap);
    }
}

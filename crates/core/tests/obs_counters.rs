//! The obs counters emitted by the solve cache and the resilient
//! escalation pipeline are part of the public contract (`xbar --metrics`
//! serialises them), so their exact semantics are pinned here with scoped
//! registries — the global registry is shared across parallel tests.

use std::sync::Arc;

use xbar_core::{solve_resilient, Algorithm, Dims, Model, ResilientConfig, SolveCache};
use xbar_traffic::{TrafficClass, Workload};

fn small_model(rho: f64) -> Model {
    Model::new(
        Dims::square(4),
        Workload::new().with(TrafficClass::poisson(rho)),
    )
    .expect("valid model")
}

#[test]
fn cache_counters_track_hits_misses_and_evictions_exactly() {
    let reg = Arc::new(xbar_obs::Registry::new());
    {
        let _g = xbar_obs::scope(&reg);
        let cache = SolveCache::new(2);
        // Three distinct models into a 2-slot cache: 3 misses, 1 eviction
        // (the oldest entry, rho = 0.01, falls off).
        for rho in [0.01, 0.02, 0.03] {
            cache
                .get_or_solve(&small_model(rho), Algorithm::Auto)
                .unwrap();
        }
        // Still resident → hit; evicted → miss again.
        cache
            .get_or_solve(&small_model(0.03), Algorithm::Auto)
            .unwrap();
        cache
            .get_or_solve(&small_model(0.01), Algorithm::Auto)
            .unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("cache.misses"), Some(4));
    assert_eq!(snap.counter("cache.hits"), Some(1));
    assert_eq!(snap.counter("cache.evictions"), Some(2));
    assert_eq!(snap.counter("cache.insert_races"), None);
}

#[test]
fn cache_counts_negative_zero_canonicalisations() {
    let reg = Arc::new(xbar_obs::Registry::new());
    {
        let _g = xbar_obs::scope(&reg);
        let cache = SolveCache::new(4);
        // beta = -0.0 must fingerprint identically to +0.0 — and the
        // normalisation is counted.
        let pos = Model::new(
            Dims::square(4),
            Workload::new().with(TrafficClass::bpp(0.05, 0.0, 1.0)),
        )
        .unwrap();
        let neg = Model::new(
            Dims::square(4),
            Workload::new().with(TrafficClass::bpp(0.05, -0.0, 1.0)),
        )
        .unwrap();
        cache.get_or_solve(&pos, Algorithm::Auto).unwrap();
        cache.get_or_solve(&neg, Algorithm::Auto).unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("cache.misses"), Some(1));
    assert_eq!(snap.counter("cache.hits"), Some(1));
    assert!(snap.counter("cache.canonicalised").unwrap_or(0) >= 1);
}

#[test]
fn resilient_escalation_counters_record_the_failure_chain() {
    // N = 200 at tiny load underflows the plain-f64 lattice, so the
    // default chain must escalate at least once and then agree with the
    // cross-checker.
    let model = Model::new(
        Dims::square(200),
        Workload::new().with(TrafficClass::poisson(1e-5)),
    )
    .unwrap();
    let reg = Arc::new(xbar_obs::Registry::new());
    {
        let _g = xbar_obs::scope(&reg);
        solve_resilient(&model, &ResilientConfig::default()).expect("resilient solve succeeds");
    }
    let snap = reg.snapshot();
    let attempts = snap.counter("solver.attempts").unwrap_or(0);
    let escalations = snap.counter("solver.escalations").unwrap_or(0);
    assert!(attempts >= 2, "attempts {attempts}");
    assert_eq!(escalations, attempts - 1);
    assert!(snap.counter("solver.failure.underflow").unwrap_or(0) >= 1);
    assert_eq!(snap.counter("solver.exhausted"), None);
    assert_eq!(snap.counter("solver.cross_check.agreed"), Some(1));
    assert_eq!(snap.counter("solver.cross_check.disagreed"), None);
    // The winner/checker gap was sampled once, and each attempt has a span.
    assert_eq!(
        snap.histogram("solver.cross_check.gap").map(|h| h.count),
        Some(1)
    );
    let span_count: u64 = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("span.solver.attempt."))
        .map(|(_, h)| h.count)
        .sum();
    assert_eq!(span_count, attempts);
}

//! Observability counts must be schedule-independent: solving the same
//! model with the serial sweep and with the wavefront-parallel sweep has
//! to produce identical counters (work done, cells swept, solver path)
//! once the sweep-mode markers themselves are set aside. Timings differ
//! run to run; counts never may.

use std::sync::Arc;

use xbar_core::{parallel, solve, Algorithm, Dims, Model};
use xbar_traffic::{TildeClass, Workload};

/// Counter prefixes that legitimately differ between schedules: the
/// serial/parallel mode markers and the per-diagonal timing histogram.
const SCHEDULE_PREFIXES: &[&str] = &["alg1.sweep."];

fn big_model() -> Model {
    // Wide enough that the per-worker diagonal-width gate (PAR_MIN_DIM
    // cells per worker) grants at least two workers, so the parallel
    // path actually engages under the automatic thread resolution.
    let n = 192;
    let workload = Workload::from_tilde(&[TildeClass::bpp(0.0024, -2.0e-6, 1.0)], n);
    Model::new(Dims::square(n), workload).expect("valid model")
}

fn snapshot_with_threads(threads: usize) -> xbar_obs::Snapshot {
    let reg = Arc::new(xbar_obs::Registry::new());
    {
        let _g = xbar_obs::scope(&reg);
        parallel::with_threads(threads, || {
            solve(&big_model(), Algorithm::Alg1Scaled).expect("solvable")
        });
    }
    reg.snapshot()
}

#[test]
fn obs_counts_match_between_serial_and_wavefront_parallel() {
    let serial = snapshot_with_threads(1);
    let parallel_snap = snapshot_with_threads(4);

    // The mode markers must say which schedule ran...
    assert_eq!(serial.counter("alg1.sweep.serial"), Some(1));
    assert_eq!(serial.counter("alg1.sweep.parallel"), None);
    assert_eq!(parallel_snap.counter("alg1.sweep.serial"), None);
    assert_eq!(parallel_snap.counter("alg1.sweep.parallel"), Some(1));

    // ...and every other counter must be identical: same cells swept,
    // same solver path, same guard outcomes.
    assert_eq!(
        serial.counters_excluding(SCHEDULE_PREFIXES),
        parallel_snap.counters_excluding(SCHEDULE_PREFIXES),
    );
    // The shared counts really are there (not an empty-vs-empty pass).
    assert!(serial.counter("alg1.cells").unwrap_or(0) > 0);
    assert_eq!(serial.counter("solver.solve"), Some(1));
}

#[test]
fn solutions_are_bitwise_equal_across_schedules_too() {
    let a = parallel::with_threads(1, || solve(&big_model(), Algorithm::Alg1Scaled).unwrap());
    let b = parallel::with_threads(4, || solve(&big_model(), Algorithm::Alg1Scaled).unwrap());
    for r in 0..1 {
        assert_eq!(a.nonblocking(r).to_bits(), b.nonblocking(r).to_bits());
        assert_eq!(a.concurrency(r).to_bits(), b.concurrency(r).to_bits());
    }
}

//! The wavefront auto-gate must account for per-worker diagonal width.
//!
//! BENCH_6 exposed a regression: at `N = 128` the auto path engaged 4
//! threads whose per-diagonal barrier cost 1.7× the serial sweep. The
//! retuned gate grants one worker per [`xbar_core::alg1::PAR_MIN_DIM`]
//! cells of the longest diagonal, so `N = 128` (width 129) stays
//! serial and `N = 512` (width 513) gets up to 5 workers.

use std::sync::Arc;
use std::time::Instant;

use xbar_core::{parallel, solve, Algorithm, Dims, Model};
use xbar_traffic::{TildeClass, Workload};

fn fig2_model(n: u32) -> Model {
    let workload = Workload::from_tilde(&[TildeClass::bpp(0.0024, 1.2e-3, 1.0)], n);
    Model::new(Dims::square(n), workload).expect("valid model")
}

/// Which schedule the automatic resolution picks, observed through the
/// sweep-mode markers.
fn auto_schedule(n: u32, threads: usize) -> (Option<u64>, Option<u64>) {
    let reg = Arc::new(xbar_obs::Registry::new());
    {
        let _g = xbar_obs::scope(&reg);
        parallel::with_threads(threads, || {
            solve(&fig2_model(n), Algorithm::Alg1Scaled).expect("solvable")
        });
    }
    let snap = reg.snapshot();
    (
        snap.counter("alg1.sweep.serial"),
        snap.counter("alg1.sweep.parallel"),
    )
}

#[test]
fn auto_gate_keeps_n128_serial_even_with_threads() {
    // Width 129 < 2 × PAR_MIN_DIM: no second worker can own a full
    // quantum, so the auto path must stay serial regardless of the
    // configured thread count — this is the deterministic core of the
    // BENCH_6 `128/t4` regression fix.
    for threads in [2, 4, 16] {
        let (serial, parallel_marker) = auto_schedule(128, threads);
        assert_eq!(serial, Some(1), "threads={threads}");
        assert_eq!(parallel_marker, None, "threads={threads}");
    }
}

#[test]
fn auto_gate_engages_on_wide_lattices() {
    // Width 257 ≥ 2 × PAR_MIN_DIM: two workers each own ≥ 96 cells.
    let (serial, parallel_marker) = auto_schedule(256, 4);
    assert_eq!(serial, None);
    assert_eq!(parallel_marker, Some(1));
}

#[test]
fn n128_full_solve_no_slower_with_four_threads() {
    // The BENCH_6 regression as a test: a full N = 128 auto solve with
    // 4 configured threads must not be slower than with 1 (both now
    // run the identical serial schedule; the 1.1× margin absorbs
    // timer noise).
    let model = fig2_model(128);
    let median = |threads: usize| -> u128 {
        let mut runs: Vec<u128> = (0..9)
            .map(|_| {
                let t0 = Instant::now();
                parallel::with_threads(threads, || {
                    solve(&model, Algorithm::Auto).expect("solvable")
                });
                t0.elapsed().as_nanos()
            })
            .collect();
        runs.sort_unstable();
        runs[runs.len() / 2]
    };
    // Warm up (pool spawn, page faults) before timing.
    let _ = median(4);
    let t1 = median(1);
    let t4 = median(4);
    assert!(
        t4 as f64 <= 1.1 * t1 as f64,
        "t4 {t4} ns vs t1 {t1} ns exceeds 1.1×"
    );
}

//! Edge-case coverage for the trunk-reservation solver ([`solve_policy`])
//! and the transient analyser: boundary states at `k·A = min(N1,N2)`,
//! rectangular multirate mixes, and 2-class transient-vs-steady-state
//! convergence.

use xbar_core::brute::Brute;
use xbar_core::policy::solve_policy;
use xbar_core::transient::Transient;
use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_traffic::{TrafficClass, Workload};

fn close(a: f64, b: f64, tol: f64) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!((a - b).abs() / scale < tol, "{a} vs {b} (tol {tol})");
}

// ---------------------------------------------------------------------------
// solve_policy boundary behaviour
// ---------------------------------------------------------------------------

/// `t_r = cap − a_r` is the tightest threshold that still admits anything:
/// class `r` gets in only from the empty switch. The chain collapses to a
/// two-state birth/death process whose measures are computable by hand:
/// with Poisson rate `λ` per tuple and `P(N,1)² = N²` tuples,
/// `π₁/π₀ = N²λ/μ`, acceptance `= π₀`, concurrency `= π₁`.
#[test]
fn threshold_at_cap_minus_bandwidth_admits_only_from_empty() {
    let rho = 0.05;
    let n = 4u32;
    let w = Workload::new().with(TrafficClass::poisson(rho));
    let m = Model::new(Dims::square(n), w).unwrap();
    let cap = m.dims().min_n();
    let pol = solve_policy(&m, &[cap - 1]);
    let ratio = (n * n) as f64 * rho; // λ = ρ·μ, μ = 1
    close(pol.acceptance[0], 1.0 / (1.0 + ratio), 1e-10);
    close(pol.concurrency[0], ratio / (1.0 + ratio), 1e-10);
    close(pol.blocking[0], ratio / (1.0 + ratio), 1e-10);
}

/// One step past the boundary (`t_r = cap − a_r + 1`) the admission
/// condition `cap − k·A ≥ a_r + t_r` is unsatisfiable even at `k = 0`:
/// the class is shut off entirely — same as the existing full-reservation
/// test but at the exact off-by-one boundary.
#[test]
fn threshold_beyond_cap_minus_bandwidth_shuts_the_class_off() {
    let w = Workload::new().with(TrafficClass::poisson(0.3));
    let m = Model::new(Dims::square(4), w).unwrap();
    let cap = m.dims().min_n();
    let pol = solve_policy(&m, &[cap]);
    assert!(pol.acceptance[0] < 1e-9, "{}", pol.acceptance[0]);
    assert!(pol.concurrency[0].abs() < 1e-10);
}

/// Rectangular switch, wideband class: with `a = 2` on a 4×6 fabric
/// (cap = 4) a threshold of 1 leaves room for exactly one connection —
/// after one admission `cap − k·A = 2 < a + t = 3`. Concurrency is that
/// of an M/M/1/1 loss system on the wideband tuple rate.
#[test]
fn rectangular_wideband_reservation_caps_at_one_connection() {
    let rho = 0.03;
    let w = Workload::new().with(TrafficClass::poisson(rho).with_bandwidth(2));
    let m = Model::new(Dims::new(4, 6), w).unwrap();
    let pol = solve_policy(&m, &[1]);
    // P(4,2)·P(6,2) = 12·30 ordered tuples.
    let ratio = 12.0 * 30.0 * rho;
    close(pol.concurrency[0], ratio / (1.0 + ratio), 1e-10);
    // Sanity: zero threshold on the same model recovers the product form
    // (rectangular + multirate complement of the square unit test).
    let free = solve_policy(&m, &[0]);
    let brute = Brute::new(&m);
    close(free.concurrency[0], brute.concurrency(0), 1e-8);
    let sol = solve(&m, Algorithm::Auto).unwrap();
    close(free.acceptance[0], sol.call_acceptance(0), 1e-8);
}

/// A Bernoulli class whose source population equals `max(N1,N2)` hits
/// `λ(k) = 0` inside the enumerated state space (all sources busy).
/// `solve_policy` must skip those zero-rate rows, and its zero-threshold
/// answer must still match exact enumeration.
#[test]
fn bernoulli_zero_rate_rows_are_handled() {
    let p = 0.2;
    let s = 5.0; // = max_n on a 4×5 switch
    let w = Workload::new()
        .with(TrafficClass::bpp(s * p, -p, 1.0))
        .with(TrafficClass::poisson(0.1));
    let m = Model::new(Dims::new(4, 5), w).unwrap();
    let pol = solve_policy(&m, &[0, 0]);
    let brute = Brute::new(&m);
    for r in 0..2 {
        close(pol.concurrency[r], brute.concurrency(r), 1e-8);
        assert!((0.0..=1.0).contains(&pol.acceptance[r]));
    }
    // Reservation against the smooth class still throttles it.
    let reserved = solve_policy(&m, &[2, 0]);
    assert!(reserved.acceptance[0] < pol.acceptance[0]);
}

// ---------------------------------------------------------------------------
// transient convergence (2-class)
// ---------------------------------------------------------------------------

fn two_class_model() -> Model {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.15).with_weight(1.0))
        .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1));
    Model::new(Dims::square(4), w).unwrap()
}

/// Starting from empty, the transient concurrency and availability of
/// both classes must converge to the stationary (brute-force) values.
#[test]
fn two_class_transient_converges_to_steady_state() {
    let m = two_class_model();
    let tr = Transient::new(&m);
    let brute = Brute::new(&m);
    let t_inf = 200.0; // ≫ 1/μ for both classes
    for r in 0..2 {
        close(tr.concurrency_at(t_inf, r), brute.concurrency(r), 1e-6);
        close(tr.availability_at(t_inf, r), brute.nonblocking(r), 1e-6);
    }
}

/// From the empty switch, concurrency rises towards the steady state and
/// availability falls from the perfect-switch value 1. The approach is
/// *not* monotone all the way (the Poisson class overshoots its
/// stationary concurrency by ~0.3% around `t ≈ 2/μ` before relaxing), so
/// the assertions are ordered ramp-up plus closeness at `t = 5/μ`.
#[test]
fn transient_approach_from_empty_is_ordered() {
    let m = two_class_model();
    let tr = Transient::new(&m);
    let brute = Brute::new(&m);
    for r in 0..2 {
        assert_eq!(tr.concurrency_at(0.0, r), 0.0);
        close(tr.availability_at(0.0, r), 1.0, 1e-12);
        let (early, late) = (tr.concurrency_at(0.5, r), tr.concurrency_at(5.0, r));
        assert!(0.0 < early && early < late, "class {r}: {early} !< {late}");
        close(late, brute.concurrency(r), 5e-2);
        // Availability decays towards (but not below) the stationary B_r.
        let (a_early, a_late) = (tr.availability_at(0.5, r), tr.availability_at(5.0, r));
        assert!(a_early > a_late, "class {r}: {a_early} !> {a_late}");
        assert!(a_late >= brute.nonblocking(r) - 1e-9);
    }
}

/// The relaxation time is finite, positive, and consistent with direct
/// evaluation: at `t = relaxation_time(eps)` the distribution is within
/// `eps` of stationary (in L1), and at a tenth of it it is not.
#[test]
fn two_class_relaxation_time_brackets_convergence() {
    let m = two_class_model();
    let tr = Transient::new(&m);
    let brute = Brute::new(&m);
    let stationary: Vec<f64> = brute.distribution().into_iter().map(|(_, p)| p).collect();
    let l1 = |t: f64| -> f64 {
        tr.distribution(t)
            .iter()
            .zip(&stationary)
            .map(|(a, b)| (a - b).abs())
            .sum()
    };
    let eps = 1e-6;
    let t_relax = tr.relaxation_time(eps);
    assert!(t_relax.is_finite() && t_relax > 0.0);
    assert!(l1(t_relax) <= eps * (1.0 + 1e-6), "{}", l1(t_relax));
    assert!(l1(t_relax / 10.0) > eps, "{}", l1(t_relax / 10.0));
}

//! Property-based checks for the wavefront-parallel lattice sweep and the
//! memoizing solve cache.
//!
//! The tentpole invariant: forcing the anti-diagonal wavefront (any thread
//! count) must reproduce the sequential lattice **bit-for-bit** for the
//! `f64` and `ExtFloat` backends — the per-cell arithmetic is shared code,
//! only the schedule changes — and the scaled backend's ratios must agree
//! to ≤ 1e-12 relative gap (they are bit-identical too, but the public
//! surface is the ratio, so that is what's asserted).

use proptest::prelude::*;

use xbar_core::alg1::{QLattice, QRatio, ScaledQLattice};
use xbar_core::{solve, Algorithm, Dims, Model, SolveCache};
use xbar_numeric::guard::relative_gap;
use xbar_numeric::ExtFloat;
use xbar_traffic::{TrafficClass, Workload};

/// A random valid traffic class (Poisson / Pascal / Bernoulli) for a
/// switch with `max_n` ports, with bandwidths up to 3.
fn arb_class(max_n: u32) -> impl Strategy<Value = TrafficClass> {
    let poisson =
        (0.001f64..2.0, 0.2f64..3.0, 1u32..4, 0.01f64..2.0).prop_map(|(rho, mu, a, w)| {
            TrafficClass::bpp(rho * mu, 0.0, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let pascal = (
        0.001f64..1.5,
        0.05f64..0.9,
        0.5f64..2.0,
        1u32..4,
        0.01f64..2.0,
    )
        .prop_map(|(alpha, frac, mu, a, w)| {
            TrafficClass::bpp(alpha, frac * mu, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let bernoulli = (1u64..6, 0.01f64..0.5, 0.5f64..2.0, 0.01f64..2.0).prop_map(
        move |(extra, p_rate, mu, w)| {
            let s = (max_n as u64 + extra) as f64;
            TrafficClass::bpp(s * p_rate, -p_rate, mu).with_weight(w)
        },
    );
    prop_oneof![poisson, pascal, bernoulli]
}

/// Random models with deliberately rectangular dims (`N1 ≠ N2` most of the
/// time) large enough for several anti-diagonals of interesting length.
fn arb_model() -> impl Strategy<Value = Model> {
    (2u32..20, 2u32..20).prop_flat_map(|(n1, n2)| {
        let max_n = n1.max(n2);
        prop::collection::vec(arb_class(max_n), 1..4).prop_filter_map(
            "classes must fit switch",
            move |classes| {
                let min_n = n1.min(n2);
                if classes.iter().any(|c| c.bandwidth > min_n) {
                    return None;
                }
                Model::new(Dims::new(n1, n2), Workload::from_classes(classes)).ok()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f64_wavefront_is_bit_identical_to_serial(
        model in arb_model(),
        threads in 2usize..9,
    ) {
        let serial: QLattice<f64> = QLattice::solve_with_threads(&model, 1);
        let par: QLattice<f64> = QLattice::solve_with_threads(&model, threads);
        let d = model.dims();
        for i1 in 0..=d.n1 as i64 {
            for i2 in 0..=d.n2 as i64 {
                prop_assert_eq!(
                    serial.q(i1, i2).to_bits(),
                    par.q(i1, i2).to_bits(),
                    "f64 Q({},{}) differs at {} threads on {}",
                    i1, i2, threads, d
                );
            }
        }
    }

    #[test]
    fn extfloat_wavefront_is_bit_identical_to_serial(
        model in arb_model(),
        threads in 2usize..9,
    ) {
        let serial: QLattice<ExtFloat> = QLattice::solve_with_threads(&model, 1);
        let par: QLattice<ExtFloat> = QLattice::solve_with_threads(&model, threads);
        let d = model.dims();
        for i1 in 0..=d.n1 as i64 {
            for i2 in 0..=d.n2 as i64 {
                // ExtFloat is (mantissa, exponent) in canonical form;
                // PartialEq is exact.
                prop_assert_eq!(
                    serial.q(i1, i2),
                    par.q(i1, i2),
                    "ExtFloat Q({},{}) differs at {} threads on {}",
                    i1, i2, threads, d
                );
            }
        }
    }

    #[test]
    fn scaled_wavefront_ratios_match_serial(
        model in arb_model(),
        threads in 2usize..9,
    ) {
        let serial = ScaledQLattice::solve_with_threads(&model, 1);
        let par = ScaledQLattice::solve_with_threads(&model, threads);
        let d = model.dims();
        let den = (d.n1 as i64, d.n2 as i64);
        for i1 in 0..=d.n1 as i64 {
            for i2 in 0..=d.n2 as i64 {
                let gap = relative_gap(
                    serial.q_ratio((i1, i2), den),
                    par.q_ratio((i1, i2), den),
                );
                prop_assert!(
                    gap <= 1e-12,
                    "scaled ratio ({},{})/{:?} gap {} at {} threads on {}",
                    i1, i2, den, gap, threads, d
                );
            }
        }
    }

    #[test]
    fn cache_hit_returns_identical_measures(
        model in arb_model(),
        algorithm in prop_oneof![
            Just(Algorithm::Auto),
            Just(Algorithm::Alg1F64),
            Just(Algorithm::Alg1Ext),
            Just(Algorithm::Alg1Scaled),
        ],
    ) {
        let cache = SolveCache::new(4);
        let cold = solve(&model, algorithm).unwrap();
        let miss = cache.get_or_solve(&model, algorithm).unwrap();
        let hit = cache.get_or_solve(&model, algorithm).unwrap();
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);
        // The hit shares the miss's lattice, and both equal a cold solve
        // exactly (same code path; memoization must not perturb results).
        prop_assert!(std::sync::Arc::ptr_eq(&miss, &hit));
        prop_assert_eq!(hit.measures(), cold.measures());
        prop_assert_eq!(hit.algorithm(), algorithm);
    }
}

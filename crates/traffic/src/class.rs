//! Traffic-class types: per-set [`TrafficClass`], aggregated [`TildeClass`],
//! burstiness classification, validation, fitting, and the equivalent
//! state-dependent-service view.

use std::fmt;

use xbar_numeric::binomial;

/// Which regime of the BPP family a class falls in (paper §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Burstiness {
    /// `β < 0`: Bernoulli / Engset-like smooth traffic (`Z < 1`).
    Smooth,
    /// `β = 0`: Poisson regular traffic (`Z = 1`).
    Regular,
    /// `β > 0`: Pascal / negative-binomial peaky traffic (`Z > 1`).
    Peaky,
}

impl fmt::Display for Burstiness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Burstiness::Smooth => write!(f, "smooth (Bernoulli)"),
            Burstiness::Regular => write!(f, "regular (Poisson)"),
            Burstiness::Peaky => write!(f, "peaky (Pascal)"),
        }
    }
}

/// Validation failures for BPP parameterisations.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficError {
    /// `α_r < 0`, or a non-finite parameter.
    InvalidAlpha(f64),
    /// `μ_r ≤ 0` or non-finite.
    InvalidMu(f64),
    /// `a_r = 0` — a connection must occupy at least one input and output.
    ZeroBandwidth,
    /// Pascal stability: requires `β_r < μ_r` for a finite infinite-server
    /// occupancy (the paper's `0 < β < 1` with `μ = 1`).
    PascalUnstable {
        /// The offending slope.
        beta: f64,
        /// The service rate it must stay below.
        mu: f64,
    },
    /// Bernoulli validity: `α_r/β_r` must be a negative integer (an integral
    /// source population `S = −α/β`); paper §2.
    BernoulliNonIntegerSources {
        /// The fractional population `−α/β` that was rejected.
        sources: f64,
    },
    /// Bernoulli validity: `α_r + β_r·n ≥ 0` must hold for all
    /// `n ≤ max(N1,N2)`, i.e. `S ≥ max(N1,N2)`; paper §2.
    BernoulliRateNegative {
        /// The source population `S = −α/β`.
        sources: f64,
        /// The `max(N1,N2)` bound it must reach.
        max_n: u32,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidAlpha(a) => write!(f, "invalid alpha: {a} (need finite, >= 0)"),
            TrafficError::InvalidMu(m) => write!(f, "invalid mu: {m} (need finite, > 0)"),
            TrafficError::ZeroBandwidth => write!(f, "bandwidth a_r must be >= 1"),
            TrafficError::PascalUnstable { beta, mu } => {
                write!(f, "Pascal class unstable: beta {beta} >= mu {mu}")
            }
            TrafficError::BernoulliNonIntegerSources { sources } => {
                write!(
                    f,
                    "Bernoulli class needs an integral source population, got S = {sources}"
                )
            }
            TrafficError::BernoulliRateNegative { sources, max_n } => write!(
                f,
                "Bernoulli class: alpha + beta*n < 0 within n <= {max_n} (S = {sources}); \
                 the arrival rate would go negative inside the state space"
            ),
        }
    }
}

impl std::error::Error for TrafficError {}

/// A traffic class in *per-set* parameters: the arrival process for one
/// particular (input-set, output-set) pair is `λ(k) = α + β·k`.
///
/// This is the form the product-form solution (paper eq. 2) and the solver
/// algorithms consume. Experiments usually start from [`TildeClass`].
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficClass {
    /// State-independent arrival-rate component `α_r ≥ 0`.
    pub alpha: f64,
    /// State-dependent slope `β_r` (sign selects the BPP regime).
    pub beta: f64,
    /// Service (departure) rate `μ_r > 0`; mean holding time `1/μ_r`.
    pub mu: f64,
    /// Bandwidth `a_r ≥ 1`: inputs (= outputs) occupied per connection.
    pub bandwidth: u32,
    /// Revenue weight `w_r` (paper §4); defaults to 1 (pure throughput).
    pub weight: f64,
}

impl TrafficClass {
    /// A Poisson (`β = 0`) class with offered per-set load `ρ = α/μ`, unit
    /// service rate and unit weight.
    pub fn poisson(rho: f64) -> Self {
        TrafficClass {
            alpha: rho,
            beta: 0.0,
            mu: 1.0,
            bandwidth: 1,
            weight: 1.0,
        }
    }

    /// A general BPP class with unit weight and bandwidth 1.
    pub fn bpp(alpha: f64, beta: f64, mu: f64) -> Self {
        TrafficClass {
            alpha,
            beta,
            mu,
            bandwidth: 1,
            weight: 1.0,
        }
    }

    /// Builder-style bandwidth override.
    pub fn with_bandwidth(mut self, a: u32) -> Self {
        self.bandwidth = a;
        self
    }

    /// Builder-style revenue-weight override.
    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    /// Builder-style service-rate override (keeps `α`, `β` fixed).
    pub fn with_mu(mut self, mu: f64) -> Self {
        self.mu = mu;
        self
    }

    /// The per-set offered load `ρ_r = α_r/μ_r` (paper §2).
    pub fn rho(&self) -> f64 {
        self.alpha / self.mu
    }

    /// The state-dependent arrival rate `λ_r(k) = α_r + β_r·k`, clamped at
    /// zero (for Bernoulli classes the population is exhausted at
    /// `k = S = −α/β`; analytically the product form zeroes those states,
    /// and the simulator must never see a negative rate).
    pub fn lambda(&self, k: u64) -> f64 {
        (self.alpha + self.beta * k as f64).max(0.0)
    }

    /// Burstiness regime by the sign of `β_r`.
    pub fn burstiness(&self) -> Burstiness {
        if self.beta < 0.0 {
            Burstiness::Smooth
        } else if self.beta == 0.0 {
            Burstiness::Regular
        } else {
            Burstiness::Peaky
        }
    }

    /// `true` iff the class is Poisson — the paper's partition `r ∈ R1`.
    pub fn is_poisson(&self) -> bool {
        self.beta == 0.0
    }

    /// Peakedness `Z = V/M` of the class's infinite-server occupancy.
    ///
    /// With explicit service rate this is `Z = μ/(μ−β)`; the paper's
    /// `Z = 1/(1−β)` is the `μ = 1` special case.
    pub fn z_factor(&self) -> f64 {
        self.mu / (self.mu - self.beta)
    }

    /// Mean infinite-server occupancy `M = α/(μ−β)` (paper's `α/(1−β)` with
    /// `μ = 1`).
    pub fn is_mean(&self) -> f64 {
        self.alpha / (self.mu - self.beta)
    }

    /// Variance of the infinite-server occupancy `V = M·Z = α·μ/(μ−β)²`.
    pub fn is_variance(&self) -> f64 {
        self.is_mean() * self.z_factor()
    }

    /// Bernoulli source population `S = −α/β` (only meaningful for
    /// [`Burstiness::Smooth`] classes).
    pub fn sources(&self) -> f64 {
        -self.alpha / self.beta
    }

    /// Fit `(α, β)` from a target infinite-server mean `m` and peakedness
    /// `z` at service rate `mu`: `β = μ(1 − 1/z)`, `α = m·μ/z`.
    ///
    /// Round-trips with [`Self::is_mean`] / [`Self::z_factor`].
    pub fn from_mean_peakedness(m: f64, z: f64, mu: f64) -> Self {
        assert!(m >= 0.0 && z > 0.0 && mu > 0.0);
        let beta = mu * (1.0 - 1.0 / z);
        let alpha = m * mu / z;
        TrafficClass::bpp(alpha, beta, mu)
    }

    /// Validate BPP constraints for use on a crossbar with
    /// `max_n = max(N1, N2)` ports (paper §2):
    ///
    /// * always: `α ≥ 0` finite, `μ > 0` finite, `a_r ≥ 1`;
    /// * Pascal: `β < μ`;
    /// * Bernoulli: `S = −α/β` a (near-)integer and `α + β·n ≥ 0` for
    ///   `n ≤ max_n`.
    pub fn validate(&self, max_n: u32) -> Result<(), TrafficError> {
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(TrafficError::InvalidAlpha(self.alpha));
        }
        if !self.mu.is_finite() || self.mu <= 0.0 {
            return Err(TrafficError::InvalidMu(self.mu));
        }
        if self.bandwidth == 0 {
            return Err(TrafficError::ZeroBandwidth);
        }
        match self.burstiness() {
            Burstiness::Regular => Ok(()),
            Burstiness::Peaky => {
                if self.beta >= self.mu {
                    Err(TrafficError::PascalUnstable {
                        beta: self.beta,
                        mu: self.mu,
                    })
                } else {
                    Ok(())
                }
            }
            Burstiness::Smooth => {
                let s = self.sources();
                if (s - s.round()).abs() > 1e-6 * s.abs().max(1.0) {
                    return Err(TrafficError::BernoulliNonIntegerSources { sources: s });
                }
                // α + β·n ≥ 0 for n ≤ max_n  ⇔  S ≥ max_n (β < 0).
                if s + 1e-9 < max_n as f64 {
                    return Err(TrafficError::BernoulliRateNegative { sources: s, max_n });
                }
                Ok(())
            }
        }
    }

    /// The equivalent state-dependent-*service* parameterisation (paper §2):
    /// unit-rate Poisson arrivals with `μ_r(k) = k·μ_r/(ν_r + δ_r·k)`, which
    /// has the same steady state when `α = ν + δ` and `β = δ`.
    pub fn service_view(&self) -> ServiceView {
        ServiceView {
            nu: self.alpha - self.beta,
            delta: self.beta,
            mu: self.mu,
        }
    }
}

/// The state-dependent-service reading of a BPP class (paper §2): Poisson
/// arrivals of unit rate served at `μ(k) = k·μ/(ν + δ·k)`.
///
/// `δ > 1` models slow-down under congestion, `0 < δ < 1` efficiency gains
/// with congestion (Heffes' queueing interpretation, paper ref \[16\]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceView {
    /// Offset `ν_r` (`= α_r − δ_r`).
    pub nu: f64,
    /// Slope `δ_r` (`= β_r`).
    pub delta: f64,
    /// Base service rate `μ_r`.
    pub mu: f64,
}

impl ServiceView {
    /// Effective service rate in state `k` (0 in the empty state).
    pub fn rate(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let k = k as f64;
        k * self.mu / (self.nu + self.delta * k)
    }

    /// Convert back to the arrival-process view: `α = ν + δ`, `β = δ`.
    pub fn arrival_view(&self) -> TrafficClass {
        TrafficClass::bpp(self.nu + self.delta, self.delta, self.mu)
    }
}

/// A traffic class in the paper's *tilde* (aggregated) parameters:
/// `λ̃(k) = α̃ + β̃·k` is the total rate of requests for a particular set of
/// `a_r` inputs and **any** set of outputs, so `α = α̃/C(N2, a_r)` etc.
/// (paper §2, after the definition of `ρ_r`).
#[derive(Clone, Debug, PartialEq)]
pub struct TildeClass {
    /// Aggregated state-independent rate `α̃_r`.
    pub alpha_tilde: f64,
    /// Aggregated slope `β̃_r`.
    pub beta_tilde: f64,
    /// Service rate `μ_r`.
    pub mu: f64,
    /// Bandwidth `a_r`.
    pub bandwidth: u32,
    /// Revenue weight `w_r`.
    pub weight: f64,
}

impl TildeClass {
    /// A Poisson tilde class (`β̃ = 0`) with aggregated load `ρ̃ = α̃/μ`,
    /// unit service rate, bandwidth 1 and unit weight.
    pub fn poisson(rho_tilde: f64) -> Self {
        TildeClass {
            alpha_tilde: rho_tilde,
            beta_tilde: 0.0,
            mu: 1.0,
            bandwidth: 1,
            weight: 1.0,
        }
    }

    /// A general BPP tilde class with bandwidth 1 and unit weight.
    pub fn bpp(alpha_tilde: f64, beta_tilde: f64, mu: f64) -> Self {
        TildeClass {
            alpha_tilde,
            beta_tilde,
            mu,
            bandwidth: 1,
            weight: 1.0,
        }
    }

    /// Builder-style bandwidth override.
    pub fn with_bandwidth(mut self, a: u32) -> Self {
        self.bandwidth = a;
        self
    }

    /// Builder-style weight override.
    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    /// Resolve to per-set parameters for a switch with `n2` outputs:
    /// divide by `C(n2, a_r)` (paper §2).
    pub fn resolve(&self, n2: u32) -> TrafficClass {
        let scale = binomial(n2 as u64, self.bandwidth as u64);
        assert!(
            scale > 0.0,
            "cannot resolve tilde class: C({n2}, {}) = 0 (bandwidth exceeds outputs)",
            self.bandwidth
        );
        TrafficClass {
            alpha: self.alpha_tilde / scale,
            beta: self.beta_tilde / scale,
            mu: self.mu,
            bandwidth: self.bandwidth,
            weight: self.weight,
        }
    }

    /// Aggregated offered load `ρ̃ = α̃/μ`.
    pub fn rho_tilde(&self) -> f64 {
        self.alpha_tilde / self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    #[test]
    fn burstiness_classification() {
        assert_eq!(
            TrafficClass::bpp(1.0, -0.1, 1.0).burstiness(),
            Burstiness::Smooth
        );
        assert_eq!(
            TrafficClass::bpp(1.0, 0.0, 1.0).burstiness(),
            Burstiness::Regular
        );
        assert_eq!(
            TrafficClass::bpp(1.0, 0.1, 1.0).burstiness(),
            Burstiness::Peaky
        );
    }

    #[test]
    fn z_factor_regimes() {
        assert!(TrafficClass::bpp(1.0, -0.5, 1.0).z_factor() < 1.0);
        assert_eq!(TrafficClass::bpp(1.0, 0.0, 1.0).z_factor(), 1.0);
        assert!(TrafficClass::bpp(1.0, 0.5, 1.0).z_factor() > 1.0);
    }

    #[test]
    fn paper_peakedness_formulas_at_unit_mu() {
        // Paper §2: M = α/(1−β), V = α/(1−β)², Z = 1/(1−β) with μ = 1.
        let c = TrafficClass::bpp(0.3, 0.4, 1.0);
        close(c.is_mean(), 0.3 / 0.6, 1e-15);
        close(c.is_variance(), 0.3 / 0.36, 1e-15);
        close(c.z_factor(), 1.0 / 0.6, 1e-15);
    }

    #[test]
    fn lambda_is_clamped_for_exhausted_bernoulli_population() {
        // S = 4 sources: λ(4) = 0 and λ(5) must not go negative.
        let c = TrafficClass::bpp(0.4, -0.1, 1.0);
        close(c.sources(), 4.0, 1e-12);
        close(c.lambda(0), 0.4, 1e-15);
        close(c.lambda(3), 0.1, 1e-12);
        assert_eq!(c.lambda(4), 0.0);
        assert_eq!(c.lambda(5), 0.0);
    }

    #[test]
    fn fit_round_trips() {
        for &(m, z, mu) in &[(2.0, 1.5, 1.0), (0.5, 0.8, 2.0), (10.0, 1.0, 0.5)] {
            let c = TrafficClass::from_mean_peakedness(m, z, mu);
            close(c.is_mean(), m, 1e-12);
            close(c.z_factor(), z, 1e-12);
        }
    }

    #[test]
    fn fit_poisson_when_z_is_one() {
        let c = TrafficClass::from_mean_peakedness(3.0, 1.0, 1.0);
        assert_eq!(c.beta, 0.0);
        assert!(c.is_poisson());
        close(c.rho(), 3.0, 1e-15);
    }

    #[test]
    fn validate_accepts_paper_figure1_parameters() {
        // Fig 1: α̃ = .0024, β̃ = −4e−6 on up to 128×128 ⇒ S = 600 ≥ 128.
        let c = TildeClass::bpp(0.0024, -4.0e-6, 1.0).resolve(128);
        c.validate(128).unwrap();
        close(c.sources(), 600.0, 1e-9);
    }

    #[test]
    fn validate_rejects_small_bernoulli_population() {
        // S = 10 sources on a 128-port switch: rate would go negative.
        let c = TrafficClass::bpp(1.0, -0.1, 1.0);
        assert!(matches!(
            c.validate(128),
            Err(TrafficError::BernoulliRateNegative { .. })
        ));
        c.validate(10).unwrap();
    }

    #[test]
    fn validate_rejects_fractional_sources() {
        let c = TrafficClass::bpp(1.0, -0.3, 1.0); // S = 3.33…
        assert!(matches!(
            c.validate(2),
            Err(TrafficError::BernoulliNonIntegerSources { .. })
        ));
    }

    #[test]
    fn validate_rejects_unstable_pascal() {
        let c = TrafficClass::bpp(1.0, 1.5, 1.0);
        assert!(matches!(
            c.validate(8),
            Err(TrafficError::PascalUnstable { .. })
        ));
        TrafficClass::bpp(1.0, 0.99, 1.0).validate(8).unwrap();
    }

    #[test]
    fn validate_rejects_bad_scalars() {
        assert!(matches!(
            TrafficClass::bpp(-1.0, 0.0, 1.0).validate(4),
            Err(TrafficError::InvalidAlpha(_))
        ));
        assert!(matches!(
            TrafficClass::bpp(1.0, 0.0, 0.0).validate(4),
            Err(TrafficError::InvalidMu(_))
        ));
        assert!(matches!(
            TrafficClass::poisson(1.0).with_bandwidth(0).validate(4),
            Err(TrafficError::ZeroBandwidth)
        ));
    }

    #[test]
    fn tilde_resolution_divides_by_output_sets() {
        // a = 1 on N2 = 8: divide by C(8,1) = 8.
        let c = TildeClass::poisson(0.8).resolve(8);
        close(c.alpha, 0.1, 1e-15);
        // a = 2 on N2 = 8: divide by C(8,2) = 28.
        let c2 = TildeClass::bpp(2.8, 0.28, 1.0).with_bandwidth(2).resolve(8);
        close(c2.alpha, 0.1, 1e-15);
        close(c2.beta, 0.01, 1e-15);
        assert_eq!(c2.bandwidth, 2);
    }

    #[test]
    #[should_panic(expected = "bandwidth exceeds outputs")]
    fn tilde_resolution_rejects_impossible_bandwidth() {
        let _ = TildeClass::poisson(1.0).with_bandwidth(9).resolve(8);
    }

    #[test]
    fn service_view_round_trips() {
        let c = TrafficClass::bpp(0.7, 0.2, 1.5);
        let sv = c.service_view();
        close(sv.nu + sv.delta, c.alpha, 1e-15);
        assert_eq!(sv.delta, c.beta);
        let back = sv.arrival_view();
        close(back.alpha, c.alpha, 1e-15);
        close(back.beta, c.beta, 1e-15);
    }

    #[test]
    fn service_view_rate_shape() {
        // δ = 1 with large ν: μ(k) ≈ k·μ/ν linear for small k, → μ constant
        // for large k (the paper's example).
        let sv = ServiceView {
            nu: 100.0,
            delta: 1.0,
            mu: 1.0,
        };
        assert_eq!(sv.rate(0), 0.0);
        close(sv.rate(1), 1.0 / 101.0, 1e-12);
        // Asymptote: k·μ/(ν+k) → μ.
        assert!((sv.rate(1_000_000) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn infinite_server_detailed_balance_equivalence() {
        // The two views must induce the same birth/death ratios:
        // λ_arr(k)/( (k+1)μ ) for the arrival view equals
        // 1/μ_srv(k+1) for the unit-rate service view.
        let c = TrafficClass::bpp(0.7, 0.2, 1.5);
        let sv = c.service_view();
        for k in 0..10u64 {
            let arrival_ratio = c.lambda(k) / ((k + 1) as f64 * c.mu);
            let service_ratio = 1.0 / sv.rate(k + 1);
            close(arrival_ratio, service_ratio, 1e-12);
        }
    }

    #[test]
    fn builders() {
        let c = TrafficClass::poisson(0.5)
            .with_bandwidth(3)
            .with_weight(2.0)
            .with_mu(4.0);
        assert_eq!(c.bandwidth, 3);
        assert_eq!(c.weight, 2.0);
        assert_eq!(c.mu, 4.0);
        close(c.rho(), 0.125, 1e-15);
    }

    #[test]
    fn display_impls() {
        assert!(format!("{}", Burstiness::Peaky).contains("Pascal"));
        let e = TrafficError::PascalUnstable { beta: 2.0, mu: 1.0 };
        assert!(format!("{e}").contains("unstable"));
    }
}

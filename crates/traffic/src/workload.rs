//! A [`Workload`] bundles the `R` traffic classes offered to one crossbar,
//! with the Poisson/bursty partition (`R1`/`R2` in the paper) and
//! whole-workload validation.

use crate::class::{TildeClass, TrafficClass, TrafficError};

/// The set of traffic classes offered to a crossbar.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Workload {
    classes: Vec<TrafficClass>,
}

impl Workload {
    /// An empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from per-set classes.
    pub fn from_classes(classes: Vec<TrafficClass>) -> Self {
        Workload { classes }
    }

    /// Build from tilde (aggregated) classes for a switch with `n2` outputs.
    pub fn from_tilde(tilde: &[TildeClass], n2: u32) -> Self {
        Workload {
            classes: tilde.iter().map(|t| t.resolve(n2)).collect(),
        }
    }

    /// Append a class (builder style).
    pub fn with(mut self, class: TrafficClass) -> Self {
        self.classes.push(class);
        self
    }

    /// The classes, in index order `r = 0..R`.
    pub fn classes(&self) -> &[TrafficClass] {
        &self.classes
    }

    /// Number of classes `R`.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` iff no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Indices of Poisson classes (the paper's `R1`).
    pub fn poisson_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| self.classes[r].is_poisson())
            .collect()
    }

    /// Indices of bursty (Bernoulli or Pascal) classes (the paper's `R2`).
    pub fn bursty_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| !self.classes[r].is_poisson())
            .collect()
    }

    /// The largest bandwidth requirement `max_r a_r` (0 for an empty
    /// workload).
    pub fn max_bandwidth(&self) -> u32 {
        self.classes.iter().map(|c| c.bandwidth).max().unwrap_or(0)
    }

    /// Validate every class for a switch with `max_n = max(N1,N2)` ports;
    /// returns the index of the first offending class alongside the error.
    pub fn validate(&self, max_n: u32) -> Result<(), (usize, TrafficError)> {
        for (r, c) in self.classes.iter().enumerate() {
            c.validate(max_n).map_err(|e| (r, e))?;
        }
        Ok(())
    }

    /// Total offered *connection* load `Σ_r a_r·ρ_r` (per-set units) — a
    /// rough single-number operating point used in reports.
    pub fn offered_connection_load(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.bandwidth as f64 * c.rho())
            .sum()
    }
}

impl FromIterator<TrafficClass> for Workload {
    fn from_iter<I: IntoIterator<Item = TrafficClass>>(iter: I) -> Self {
        Workload {
            classes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_matches_paper_r1_r2() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1))
            .with(TrafficClass::bpp(0.1, 0.05, 1.0))
            .with(TrafficClass::poisson(0.2))
            .with(TrafficClass::bpp(0.4, -0.1, 1.0));
        assert_eq!(w.poisson_indices(), vec![0, 2]);
        assert_eq!(w.bursty_indices(), vec![1, 3]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn from_tilde_resolves_each_class() {
        let tilde = vec![
            TildeClass::poisson(0.8),
            TildeClass::bpp(2.8, 0.0028, 1.0).with_bandwidth(2),
        ];
        let w = Workload::from_tilde(&tilde, 8);
        assert!((w.classes()[0].alpha - 0.1).abs() < 1e-15);
        assert!((w.classes()[1].alpha - 0.1).abs() < 1e-15);
        assert_eq!(w.max_bandwidth(), 2);
    }

    #[test]
    fn validate_reports_offending_index() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1))
            .with(TrafficClass::bpp(1.0, 2.0, 1.0)); // unstable Pascal
        let err = w.validate(8).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn offered_load_weights_bandwidth() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1))
            .with(TrafficClass::poisson(0.2).with_bandwidth(2));
        assert!((w.offered_connection_load() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn empty_workload_behaviour() {
        let w = Workload::new();
        assert!(w.is_empty());
        assert_eq!(w.max_bandwidth(), 0);
        assert!(w.validate(8).is_ok());
        assert_eq!(w.offered_connection_load(), 0.0);
    }

    #[test]
    fn from_iterator() {
        let w: Workload = (1..=3)
            .map(|i| TrafficClass::poisson(i as f64 * 0.1))
            .collect();
        assert_eq!(w.len(), 3);
    }
}

#![warn(missing_docs)]

//! BPP (Bernoulli–Poisson–Pascal) traffic-class modelling for the
//! asynchronous multi-rate crossbar of Stirpe & Pinsky (SIGCOMM '92).
//!
//! A *class* `r` of connection requests is described by (paper §2):
//!
//! * a bandwidth requirement `a_r` — the number of crossbar inputs **and**
//!   outputs one connection of the class occupies;
//! * a mean holding time `1/μ_r` (any distribution, by insensitivity);
//! * a state-dependent arrival rate `λ_r(k) = α_r + β_r·k` for each
//!   particular (input-set, output-set) pair, where `k` is the number of
//!   connections of the class currently in progress. The sign of `β_r`
//!   selects the burstiness regime:
//!   - `β < 0` — **Bernoulli** (smooth traffic, finite source population of
//!     `S = −α/β` sources),
//!   - `β = 0` — **Poisson** (regular traffic),
//!   - `β > 0` — **Pascal** (peaky traffic).
//!
//! The paper states most experiments in *tilde* parameters, aggregated over
//! all `C(N2, a_r)` output sets: `λ̃_r = C(N2,a_r)·λ_r`. [`TildeClass`]
//! carries those and resolves to a per-set [`TrafficClass`] once the switch
//! geometry is known.
//!
//! The module also provides the equivalent state-dependent-*service* view of
//! the same model (paper §2, after the `μ_r(k_r)` equation), peakedness
//! calculations, parameter fitting from `(mean, Z)`, and infinite-server
//! occupancy distributions used as test oracles.

pub mod class;
pub mod infinite_server;
pub mod workload;

pub use class::{Burstiness, ServiceView, TildeClass, TrafficClass, TrafficError};
pub use infinite_server::occupancy_pmf;
pub use workload::Workload;

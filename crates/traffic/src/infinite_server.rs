//! Infinite-server occupancy distributions of BPP classes.
//!
//! On an infinite server group (no blocking), a BPP class with birth rate
//! `λ(k) = α + β·k` and death rate `k·μ` has occupancy
//! `π(k) ∝ Π_{l=1..k} λ(l−1)/(l·μ)`, which is exactly
//!
//! * **Binomial(S, p)** with `S = −α/β`, `p = −β/(μ−β)` when `β < 0`,
//! * **Poisson(α/μ)** when `β = 0`,
//! * **Negative-binomial(r = α/β, q = β/μ)** when `0 < β < μ`.
//!
//! This is what makes the family "Bernoulli–Poisson–Pascal" (paper §2). The
//! crossbar truncates and reweights this distribution through `Ψ(k)`; the
//! pure forms here serve as closed-form oracles in tests and as the
//! asymptotic sanity check for the simulator.

use crate::class::{Burstiness, TrafficClass};
use xbar_numeric::NeumaierSum;

/// Occupancy pmf `π(0..=kmax)` of the class on an infinite server group,
/// normalised over the truncation range.
///
/// For Bernoulli classes the support naturally ends at the source population
/// `S`; entries beyond it are exactly zero.
pub fn occupancy_pmf(class: &TrafficClass, kmax: usize) -> Vec<f64> {
    let mut weights = Vec::with_capacity(kmax + 1);
    let mut w = 1.0f64;
    weights.push(w);
    for k in 1..=kmax {
        w *= class.lambda((k - 1) as u64) / (k as f64 * class.mu);
        weights.push(w);
    }
    let total: NeumaierSum = weights.iter().cloned().collect();
    let norm = total.value();
    weights.iter().map(|x| x / norm).collect()
}

/// Mean of a pmf vector (index-weighted).
pub fn pmf_mean(pmf: &[f64]) -> f64 {
    pmf.iter()
        .enumerate()
        .map(|(k, p)| k as f64 * p)
        .sum::<f64>()
}

/// Variance of a pmf vector.
pub fn pmf_variance(pmf: &[f64]) -> f64 {
    let m = pmf_mean(pmf);
    pmf.iter()
        .enumerate()
        .map(|(k, p)| (k as f64 - m).powi(2) * p)
        .sum::<f64>()
}

/// The closed-form pmf the BPP occupancy must coincide with, evaluated at
/// `k` (used as a test oracle; exposed because the simulator tests reuse it).
pub fn closed_form_pmf(class: &TrafficClass, k: usize) -> f64 {
    match class.burstiness() {
        Burstiness::Regular => {
            // Poisson(ρ)
            let rho = class.rho();
            let mut p = (-rho).exp();
            for i in 1..=k {
                p *= rho / i as f64;
            }
            p
        }
        Burstiness::Smooth => {
            // Binomial(S, p), p = −β/(μ−β)
            let s = class.sources().round() as u64;
            if (k as u64) > s {
                return 0.0;
            }
            let p = -class.beta / (class.mu - class.beta);
            xbar_numeric::binomial(s, k as u64)
                * p.powi(k as i32)
                * (1.0 - p).powi((s - k as u64) as i32)
        }
        Burstiness::Peaky => {
            // NegBinomial(r, q): C(r−1+k, k) q^k (1−q)^r
            let r = class.alpha / class.beta;
            let q = class.beta / class.mu;
            xbar_numeric::binomial_real(r - 1.0 + k as f64, k as u32)
                * q.powi(k as i32)
                * (1.0 - q).powf(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::TrafficClass;

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    #[test]
    fn pmf_normalises() {
        for class in [
            TrafficClass::poisson(2.0),
            TrafficClass::bpp(1.0, 0.4, 1.0),
            TrafficClass::bpp(2.0, -0.25, 1.0), // S = 8
        ] {
            let pmf = occupancy_pmf(&class, 200);
            let total: f64 = pmf.iter().sum();
            close(total, 1.0, 1e-12);
            assert!(pmf.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn poisson_matches_closed_form() {
        let class = TrafficClass::poisson(1.7);
        let pmf = occupancy_pmf(&class, 80);
        for (k, &p) in pmf.iter().enumerate().take(30) {
            close(p, closed_form_pmf(&class, k), 1e-10);
        }
    }

    #[test]
    fn bernoulli_matches_binomial() {
        // S = 8 sources.
        let class = TrafficClass::bpp(2.0, -0.25, 1.0);
        let pmf = occupancy_pmf(&class, 20);
        for (k, &p) in pmf.iter().enumerate().take(13) {
            close(p, closed_form_pmf(&class, k), 1e-10);
        }
        // Support ends at S.
        assert_eq!(pmf[9], 0.0);
        assert_eq!(pmf[15], 0.0);
    }

    #[test]
    fn pascal_matches_negative_binomial() {
        let class = TrafficClass::bpp(1.2, 0.4, 1.0); // r = 3, q = 0.4
        let pmf = occupancy_pmf(&class, 400);
        for (k, &p) in pmf.iter().enumerate().take(40) {
            close(p, closed_form_pmf(&class, k), 1e-9);
        }
    }

    #[test]
    fn moments_match_class_formulas() {
        for class in [
            TrafficClass::poisson(2.5),
            TrafficClass::bpp(1.0, 0.5, 1.0),
            TrafficClass::bpp(2.0, -0.25, 1.0),
            TrafficClass::bpp(0.7, 0.2, 1.5),
        ] {
            let pmf = occupancy_pmf(&class, 2000);
            close(pmf_mean(&pmf), class.is_mean(), 1e-6);
            close(pmf_variance(&pmf), class.is_variance(), 1e-5);
        }
    }

    #[test]
    fn peakedness_orders_the_family() {
        // At equal mean, Pascal variance > Poisson variance > Bernoulli.
        let m = 2.0;
        let smooth = TrafficClass::from_mean_peakedness(m, 0.5, 1.0);
        let regular = TrafficClass::from_mean_peakedness(m, 1.0, 1.0);
        let peaky = TrafficClass::from_mean_peakedness(m, 2.0, 1.0);
        let v = |c: &TrafficClass| pmf_variance(&occupancy_pmf(c, 3000));
        let (vs, vr, vp) = (v(&smooth), v(&regular), v(&peaky));
        assert!(vs < vr && vr < vp, "{vs} {vr} {vp}");
        close(vr / m, 1.0, 1e-6); // Z = 1
    }
}

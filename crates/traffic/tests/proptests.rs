//! Property-based tests for the BPP traffic machinery.

use proptest::prelude::*;
use xbar_traffic::infinite_server::{closed_form_pmf, occupancy_pmf, pmf_mean, pmf_variance};
use xbar_traffic::{Burstiness, TildeClass, TrafficClass, Workload};

fn close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() / scale < tol
}

/// A random stable BPP class (any regime).
fn arb_class() -> impl Strategy<Value = TrafficClass> {
    let poisson =
        (1e-4f64..5.0, 0.1f64..4.0).prop_map(|(rho, mu)| TrafficClass::bpp(rho * mu, 0.0, mu));
    let pascal = (1e-4f64..3.0, 0.01f64..0.95, 0.1f64..4.0)
        .prop_map(|(a, frac, mu)| TrafficClass::bpp(a, frac * mu, mu));
    let bernoulli = (2u64..200, 1e-4f64..0.5, 0.1f64..4.0)
        .prop_map(|(s, p, mu)| TrafficClass::bpp(s as f64 * p, -p, mu));
    prop_oneof![poisson, pascal, bernoulli]
}

proptest! {
    #[test]
    fn fit_from_mean_peakedness_round_trips(
        m in 1e-3f64..50.0,
        z in 0.05f64..20.0,
        mu in 0.1f64..5.0,
    ) {
        let c = TrafficClass::from_mean_peakedness(m, z, mu);
        prop_assert!(close(c.is_mean(), m, 1e-10));
        prop_assert!(close(c.z_factor(), z, 1e-10));
        prop_assert!(close(c.is_variance(), m * z, 1e-10));
    }

    #[test]
    fn z_factor_sign_matches_regime(class in arb_class()) {
        match class.burstiness() {
            Burstiness::Smooth => prop_assert!(class.z_factor() < 1.0),
            Burstiness::Regular => prop_assert!(close(class.z_factor(), 1.0, 1e-12)),
            Burstiness::Peaky => prop_assert!(class.z_factor() > 1.0),
        }
    }

    #[test]
    fn tilde_resolution_round_trips(
        alpha_t in 1e-6f64..10.0,
        beta_frac in -0.5f64..0.5,
        n2 in 1u32..64,
        a in 1u32..4,
    ) {
        prop_assume!(a <= n2);
        let beta_t = alpha_t * beta_frac;
        let t = TildeClass::bpp(alpha_t, beta_t, 1.0).with_bandwidth(a);
        let c = t.resolve(n2);
        let scale = xbar_numeric::binomial(n2 as u64, a as u64);
        prop_assert!(close(c.alpha * scale, alpha_t, 1e-12));
        prop_assert!(close(c.beta * scale, beta_t, 1e-12) || beta_t == 0.0);
        // The α/β ratio (and hence regime and source count) is invariant.
        if beta_t != 0.0 {
            prop_assert!(close(c.alpha / c.beta, alpha_t / beta_t, 1e-10));
        }
    }

    #[test]
    fn service_view_round_trips(class in arb_class()) {
        let back = class.service_view().arrival_view();
        prop_assert!(close(back.alpha, class.alpha, 1e-12));
        prop_assert!(close(back.beta, class.beta, 1e-12) || class.beta == 0.0);
        prop_assert!(close(back.mu, class.mu, 1e-12));
    }

    #[test]
    fn infinite_server_moments_match_closed_forms(class in arb_class()) {
        // Truncate far enough that the tail is negligible: the Pascal tail
        // decays like (β/μ)^k, i.e. one e-fold per 1/(1−β/μ) states.
        let geo = (class.beta / class.mu).max(0.0);
        let kmax = ((class.is_mean() + 12.0 * class.is_variance().sqrt()) as usize
            + 30
            + (60.0 / (1.0 - geo)) as usize)
            .min(20_000);
        let pmf = occupancy_pmf(&class, kmax);
        prop_assert!(close(pmf.iter().sum::<f64>(), 1.0, 1e-9));
        prop_assert!(close(pmf_mean(&pmf), class.is_mean(), 1e-4));
        prop_assert!(close(pmf_variance(&pmf), class.is_variance(), 1e-3));
    }

    #[test]
    fn occupancy_pmf_matches_named_distribution(class in arb_class(), k in 0usize..30) {
        let pmf = occupancy_pmf(&class, 2000);
        if k < pmf.len() {
            let want = closed_form_pmf(&class, k);
            prop_assert!(
                close(pmf[k], want, 1e-6) || (pmf[k] < 1e-12 && want < 1e-12),
                "k={k}: {} vs {}", pmf[k], want
            );
        }
    }

    #[test]
    fn lambda_never_negative(class in arb_class(), k in 0u64..10_000) {
        prop_assert!(class.lambda(k) >= 0.0);
    }

    #[test]
    fn workload_partition_is_exhaustive(classes in prop::collection::vec(arb_class(), 0..6)) {
        let w = Workload::from_classes(classes);
        let p = w.poisson_indices();
        let b = w.bursty_indices();
        prop_assert_eq!(p.len() + b.len(), w.len());
        let mut all: Vec<usize> = p.into_iter().chain(b).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..w.len()).collect::<Vec<_>>());
    }

    #[test]
    fn validation_accepts_exactly_the_paper_conditions(
        s in 1u64..100,
        p in 1e-4f64..1.0,
        max_n in 1u32..100,
    ) {
        // A Bernoulli class with integral population S is valid iff
        // S ≥ max_n.
        let c = TrafficClass::bpp(s as f64 * p, -p, 1.0);
        let valid = c.validate(max_n).is_ok();
        prop_assert_eq!(valid, s >= max_n as u64);
    }
}

#![warn(missing_docs)]

//! Numerical substrate for the `xbar` crossbar-analysis workspace.
//!
//! The normalisation-constant recursions of Stirpe & Pinsky (SIGCOMM '92)
//! manipulate quantities like `Q(N) = G(N)/(N1!·N2!)`, whose magnitude for a
//! `256 × 256` crossbar is on the order of `1/(256!)² ≈ 10^-1014` — far below
//! the smallest positive `f64`. The paper works around this with *dynamic
//! scaling* (its §6). This crate provides that and two stronger tools:
//!
//! * [`ExtFloat`] — an extended-range float (`f64` mantissa + `i64` binary
//!   exponent) with ~15 significant digits and an exponent range of ±2^63,
//!   so the recursions can be run verbatim with no scaling logic at all;
//! * log-domain special functions ([`special`]) for computing the same
//!   quantities as sums of logarithms, used to cross-check both of the
//!   other backends.
//!
//! It also provides compensated summation ([`sum`]), exact and floating
//! combinatorics ([`special`]), finite-difference helpers ([`diff`]) used
//! for the paper's numerically-approximated revenue gradients (§4), and
//! numeric guards ([`guard`]) that classify the characteristic failure
//! modes of fixed-precision backends (underflow, `NaN` ratios, probability
//! drift) for the resilient solve pipeline.

pub mod diff;
pub mod extfloat;
pub mod guard;
pub mod special;
pub mod sum;

pub use diff::{central_diff, forward_diff};
pub use extfloat::ExtFloat;
pub use guard::{
    checked_nonneg, checked_prob, finite_or_err, relative_gap, within_rel, GuardError,
};
pub use special::{
    binomial, binomial_exact, binomial_real, falling_factorial, ln_binomial, ln_factorial,
    ln_gamma, ln_permutation, permutation, permutation_exact,
};
pub use sum::{logsumexp, logsumexp_pair, NeumaierSum};

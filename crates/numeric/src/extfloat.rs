//! Extended-range floating point: an `f64` mantissa paired with an `i64`
//! binary exponent.
//!
//! [`ExtFloat`] represents `m × 2^e` with `0.5 ≤ |m| < 1` (the `frexp`
//! normal form), giving the precision of `f64` (~15–16 significant decimal
//! digits) over an exponent range of roughly `10^±(2.7 × 10^18)`. This is the
//! numeric backend that lets Algorithm 1 of the paper run verbatim on
//! `256 × 256` crossbars, where the raw `Q(N)` values are around `10^-1014`
//! and would underflow `f64` (the situation the paper's §6 "dynamic scaling"
//! is designed to patch).
//!
//! Only the operations the recursions need are implemented: addition,
//! subtraction, multiplication, division, scaling by `f64`, natural log,
//! comparison, and a careful [`ExtFloat::ratio`] that returns the quotient of
//! two extended floats as an ordinary `f64` (the form in which all of the
//! paper's performance measures are expressed, so the huge exponents always
//! cancel at the end).

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Split a finite `f64` into `(mantissa, exponent)` with
/// `x = mantissa × 2^exponent` and `0.5 ≤ |mantissa| < 1` (or `(0, 0)` for
/// zero). Equivalent to C's `frexp`, which `std` does not expose.
pub fn frexp(x: f64) -> (f64, i32) {
    if x == 0.0 || !x.is_finite() {
        return (x, 0);
    }
    let bits = x.to_bits();
    let exp_bits = ((bits >> 52) & 0x7ff) as i32;
    if exp_bits == 0 {
        // Subnormal: renormalise by scaling into the normal range first.
        let (m, e) = frexp(x * f64::from_bits(0x43F0_0000_0000_0000)); // × 2^64
        return (m, e - 64);
    }
    let e = exp_bits - 1022;
    let m = f64::from_bits((bits & !(0x7ffu64 << 52)) | (1022u64 << 52));
    (m, e)
}

/// Compute `x × 2^e`, saturating to `±inf`/`0` outside the `f64` range.
/// Equivalent to C's `ldexp`.
pub fn ldexp(x: f64, e: i64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    // Apply in at most three steps so intermediate powers stay representable.
    let mut result = x;
    let mut remaining = e;
    while remaining != 0 {
        let step = remaining.clamp(-1000, 1000) as i32;
        result *= 2f64.powi(step);
        remaining -= step as i64;
        if result == 0.0 || result.is_infinite() {
            return result;
        }
    }
    result
}

/// An extended-range float `m × 2^e`.
///
/// Invariant: either `m == 0.0 && e == 0`, or `0.5 ≤ |m| < 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtFloat {
    m: f64,
    e: i64,
}

impl ExtFloat {
    /// The value `0`.
    pub const ZERO: ExtFloat = ExtFloat { m: 0.0, e: 0 };
    /// The value `1`.
    pub const ONE: ExtFloat = ExtFloat { m: 0.5, e: 1 };

    /// Construct from an ordinary `f64`.
    ///
    /// # Panics
    /// Panics if `x` is NaN or infinite — the recursions this type backs
    /// never produce non-finite values, so one appearing is a logic error
    /// worth failing loudly on.
    pub fn from_f64(x: f64) -> Self {
        assert!(x.is_finite(), "ExtFloat::from_f64 on non-finite {x}");
        let (m, e) = frexp(x);
        ExtFloat { m, e: e as i64 }
    }

    /// Construct `m × 2^e` from unnormalised parts.
    pub fn from_parts(m: f64, e: i64) -> Self {
        assert!(m.is_finite(), "ExtFloat::from_parts on non-finite {m}");
        if m == 0.0 {
            return Self::ZERO;
        }
        let (nm, ne) = frexp(m);
        ExtFloat {
            m: nm,
            e: e + ne as i64,
        }
    }

    /// Construct `e^x` for an arbitrary (possibly huge) exponent `x`.
    pub fn exp(x: f64) -> Self {
        assert!(x.is_finite(), "ExtFloat::exp on non-finite {x}");
        // e^x = 2^(x·log2(e)) = 2^k · 2^f with k integer, |f| < 1.
        let y = x * std::f64::consts::LOG2_E;
        let k = y.floor();
        let f = y - k;
        Self::from_parts(2f64.powf(f), k as i64)
    }

    /// The mantissa (in `[0.5, 1)` by magnitude, or `0`).
    pub fn mantissa(self) -> f64 {
        self.m
    }

    /// The binary exponent.
    pub fn exponent(self) -> i64 {
        self.e
    }

    /// Convert back to `f64`, saturating to `±inf` / `0` outside the range.
    pub fn to_f64(self) -> f64 {
        ldexp(self.m, self.e)
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.m == 0.0
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.m > 0.0
    }

    /// Natural logarithm. Returns `-inf` for zero.
    ///
    /// # Panics
    /// Panics on negative values.
    pub fn ln(self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        assert!(self.m > 0.0, "ln of negative ExtFloat");
        self.m.ln() + self.e as f64 * std::f64::consts::LN_2
    }

    /// Base-10 logarithm. Returns `-inf` for zero.
    pub fn log10(self) -> f64 {
        self.ln() / std::f64::consts::LN_10
    }

    /// The quotient `self / other` as an ordinary `f64`.
    ///
    /// All performance measures in the paper are ratios of normalisation
    /// constants (e.g. `B_r = Q(N − a_r·I)/Q(N)`), so even though each
    /// operand may have an astronomical exponent, the result is a plain
    /// probability-scale number. This method divides mantissas and subtracts
    /// exponents so the ratio is exact up to `f64` rounding.
    pub fn ratio(self, other: ExtFloat) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        assert!(!other.is_zero(), "ExtFloat::ratio division by zero");
        ldexp(self.m / other.m, self.e - other.e)
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        ExtFloat {
            m: self.m.abs(),
            e: self.e,
        }
    }

    /// Raise to a non-negative integer power by repeated squaring.
    pub fn powi(self, n: u32) -> Self {
        let mut result = Self::ONE;
        let mut base = self;
        let mut n = n;
        while n > 0 {
            if n & 1 == 1 {
                result *= base;
            }
            base *= base;
            n >>= 1;
        }
        result
    }
}

impl Default for ExtFloat {
    fn default() -> Self {
        Self::ZERO
    }
}

impl From<f64> for ExtFloat {
    fn from(x: f64) -> Self {
        Self::from_f64(x)
    }
}

impl From<u64> for ExtFloat {
    fn from(x: u64) -> Self {
        Self::from_f64(x as f64)
    }
}

impl fmt::Display for ExtFloat {
    /// Renders as `m2^e`-free scientific notation, e.g. `1.234e-1017`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let log10 = self.abs().log10();
        let e10 = log10.floor();
        let mant = 10f64.powf(log10 - e10) * self.m.signum();
        write!(f, "{:.6}e{}", mant, e10 as i64)
    }
}

impl Add for ExtFloat {
    type Output = ExtFloat;
    fn add(self, rhs: ExtFloat) -> ExtFloat {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        // Align onto the larger exponent; beyond 64 bits of shift, the
        // smaller operand is invisible at f64 precision.
        let (big, small) = if self.e >= rhs.e {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let shift = big.e - small.e;
        if shift > 64 {
            return big;
        }
        let m = big.m + ldexp(small.m, -shift);
        ExtFloat::from_parts(m, big.e)
    }
}

impl Sub for ExtFloat {
    type Output = ExtFloat;
    fn sub(self, rhs: ExtFloat) -> ExtFloat {
        self + (-rhs)
    }
}

impl Neg for ExtFloat {
    type Output = ExtFloat;
    fn neg(self) -> ExtFloat {
        ExtFloat {
            m: -self.m,
            e: self.e,
        }
    }
}

impl Mul for ExtFloat {
    type Output = ExtFloat;
    fn mul(self, rhs: ExtFloat) -> ExtFloat {
        if self.is_zero() || rhs.is_zero() {
            return ExtFloat::ZERO;
        }
        ExtFloat::from_parts(self.m * rhs.m, self.e + rhs.e)
    }
}

impl Mul<f64> for ExtFloat {
    type Output = ExtFloat;
    fn mul(self, rhs: f64) -> ExtFloat {
        self * ExtFloat::from_f64(rhs)
    }
}

impl Div for ExtFloat {
    type Output = ExtFloat;
    fn div(self, rhs: ExtFloat) -> ExtFloat {
        assert!(!rhs.is_zero(), "ExtFloat division by zero");
        if self.is_zero() {
            return ExtFloat::ZERO;
        }
        ExtFloat::from_parts(self.m / rhs.m, self.e - rhs.e)
    }
}

impl Div<f64> for ExtFloat {
    type Output = ExtFloat;
    fn div(self, rhs: f64) -> ExtFloat {
        self / ExtFloat::from_f64(rhs)
    }
}

impl AddAssign for ExtFloat {
    fn add_assign(&mut self, rhs: ExtFloat) {
        *self = *self + rhs;
    }
}

impl SubAssign for ExtFloat {
    fn sub_assign(&mut self, rhs: ExtFloat) {
        *self = *self - rhs;
    }
}

impl MulAssign for ExtFloat {
    fn mul_assign(&mut self, rhs: ExtFloat) {
        *self = *self * rhs;
    }
}

impl DivAssign for ExtFloat {
    fn div_assign(&mut self, rhs: ExtFloat) {
        *self = *self / rhs;
    }
}

impl Sum for ExtFloat {
    fn sum<I: Iterator<Item = ExtFloat>>(iter: I) -> ExtFloat {
        iter.fold(ExtFloat::ZERO, |acc, x| acc + x)
    }
}

impl PartialOrd for ExtFloat {
    fn partial_cmp(&self, other: &ExtFloat) -> Option<Ordering> {
        let sign = |x: &ExtFloat| {
            if x.m > 0.0 {
                1
            } else if x.m < 0.0 {
                -1
            } else {
                0
            }
        };
        let (sa, sb) = (sign(self), sign(other));
        if sa != sb {
            return sa.partial_cmp(&sb);
        }
        if sa == 0 {
            return Some(Ordering::Equal);
        }
        // Same nonzero sign: compare exponents (flipping for negatives).
        let ord = match self.e.cmp(&other.e) {
            Ordering::Equal => self.m.partial_cmp(&other.m)?,
            other_ord => {
                if sa > 0 {
                    other_ord
                } else {
                    other_ord.reverse()
                }
            }
        };
        // For negatives with differing exponents the mantissa comparison is
        // already handled above; exponent ordering was flipped.
        Some(ord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!(
            (a - b).abs() / scale < tol,
            "{a} vs {b} (rel err {})",
            (a - b).abs() / scale
        );
    }

    #[test]
    fn frexp_round_trips() {
        for &x in &[
            1.0,
            -1.0,
            0.5,
            3.75,
            1e300,
            -1e-300,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 1024.0, // subnormal
            std::f64::consts::PI,
        ] {
            let (m, e) = frexp(x);
            assert!(m == 0.0 || (0.5..1.0).contains(&m.abs()), "mantissa {m}");
            close(ldexp(m, e as i64), x, 1e-15);
        }
    }

    #[test]
    fn frexp_zero() {
        assert_eq!(frexp(0.0), (0.0, 0));
    }

    #[test]
    fn ldexp_saturates() {
        assert_eq!(ldexp(1.0, 10_000), f64::INFINITY);
        assert_eq!(ldexp(1.0, -10_000), 0.0);
        assert_eq!(ldexp(-1.0, 10_000), f64::NEG_INFINITY);
    }

    #[test]
    fn arithmetic_matches_f64_in_range() {
        let pairs = [
            (3.5, 2.25),
            (1e-10, 7.0),
            (123456.789, 0.001),
            (-2.5, 8.0),
            (1e150, 1e-150),
        ];
        for &(a, b) in &pairs {
            let (ea, eb) = (ExtFloat::from_f64(a), ExtFloat::from_f64(b));
            close((ea + eb).to_f64(), a + b, 1e-14);
            close((ea - eb).to_f64(), a - b, 1e-14);
            close((ea * eb).to_f64(), a * b, 1e-14);
            close((ea / eb).to_f64(), a / b, 1e-14);
        }
    }

    #[test]
    fn survives_far_beyond_f64_range() {
        // Compute 1/500! step by step — raw value ~ 1e-1134, far below f64.
        let mut q = ExtFloat::ONE;
        for n in 1..=500u64 {
            q /= ExtFloat::from_f64(n as f64);
        }
        // ln(1/500!) = -ln_gamma(501)
        let expect = -crate::special::ln_gamma(501.0);
        close(q.ln(), expect, 1e-12);
        assert!(q.is_positive());
        assert_eq!(q.to_f64(), 0.0); // saturates when forced back to f64
    }

    #[test]
    fn ratio_of_tiny_values_is_exact() {
        // (1/300!) / (1/301!) = 301 even though both operands underflow f64.
        let mut a = ExtFloat::ONE;
        let mut b = ExtFloat::ONE;
        for n in 1..=300u64 {
            a /= ExtFloat::from_f64(n as f64);
            b /= ExtFloat::from_f64(n as f64);
        }
        b /= ExtFloat::from_f64(301.0);
        close(a.ratio(b), 301.0, 1e-13);
    }

    #[test]
    fn exp_handles_huge_arguments() {
        close(ExtFloat::exp(1.0).ln(), 1.0, 1e-14);
        close(ExtFloat::exp(-2345.0).ln(), -2345.0, 1e-12);
        close(ExtFloat::exp(10_000.0).ln(), 10_000.0, 1e-12);
    }

    #[test]
    fn add_with_extreme_exponent_gap_keeps_larger() {
        let big = ExtFloat::from_parts(0.75, 1000);
        let small = ExtFloat::from_parts(0.75, -1000);
        assert_eq!(big + small, big);
        assert_eq!(small + big, big);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let x = ExtFloat::from_f64(1.5);
        let mut acc = ExtFloat::ONE;
        for _ in 0..13 {
            acc *= x;
        }
        close(x.powi(13).to_f64(), acc.to_f64(), 1e-14);
        assert_eq!(x.powi(0), ExtFloat::ONE);
    }

    #[test]
    fn ordering() {
        let a = ExtFloat::from_f64(2.0);
        let b = ExtFloat::from_f64(3.0);
        let z = ExtFloat::ZERO;
        let n = ExtFloat::from_f64(-5.0);
        assert!(a < b);
        assert!(z < a);
        assert!(n < z);
        assert!(n < a);
        let tiny = ExtFloat::from_parts(0.9, -2000);
        assert!(z < tiny);
        assert!(tiny < a);
    }

    #[test]
    fn display_uses_decimal_exponent() {
        let mut q = ExtFloat::ONE;
        for n in 1..=300u64 {
            q /= ExtFloat::from_f64(n as f64);
        }
        let s = format!("{q}");
        assert!(s.contains('e'), "{s}");
        assert!(s.contains("-61"), "{s}"); // ln10(300!) ≈ 614.5
    }

    #[test]
    fn sum_iterator() {
        let v: ExtFloat = (1..=10u64).map(|n| ExtFloat::from_f64(n as f64)).sum();
        close(v.to_f64(), 55.0, 1e-14);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_f64_rejects_nan() {
        let _ = ExtFloat::from_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = ExtFloat::ONE / ExtFloat::ZERO;
    }
}

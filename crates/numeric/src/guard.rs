//! Numeric guards: turn silent floating-point junk into typed errors.
//!
//! The Q-lattice recursions fail in characteristic ways — cells underflow
//! to zero, ratios of underflowed cells become `NaN`, and accumulated
//! round-off can push a probability slightly outside `[0, 1]`. Upstream
//! code historically surfaced these as nonsense measures; the resilient
//! solve pipeline instead runs every computed measure through these guards
//! and treats a violation as a backend failure worth escalating past.

use std::fmt;

/// Slack allowed on probability bounds before a value is rejected:
/// round-off of a few ulps near 0 or 1 is legitimate, anything beyond it
/// indicates a broken backend.
pub const PROB_SLACK: f64 = 1e-9;

/// A rejected numeric value: what it was supposed to be, what it was, and
/// which rule it broke.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardError {
    /// Human-readable name of the quantity (e.g. `"nonblocking[2]"`).
    pub what: String,
    /// The offending value.
    pub value: f64,
    /// Which rule the value broke.
    pub violation: Violation,
}

/// Which guard rule a value broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// `NaN` or ±∞ where a finite value was required.
    NonFinite,
    /// Below the admissible range (e.g. a negative probability).
    BelowRange,
    /// Above the admissible range (e.g. a probability above one).
    AboveRange,
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.violation {
            Violation::NonFinite => write!(f, "{} is not finite ({})", self.what, self.value),
            Violation::BelowRange => write!(f, "{} is below range ({})", self.what, self.value),
            Violation::AboveRange => write!(f, "{} is above range ({})", self.what, self.value),
        }
    }
}

impl std::error::Error for GuardError {}

/// Require `value` to be finite (no `NaN`, no ±∞).
pub fn finite_or_err(what: &str, value: f64) -> Result<f64, GuardError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(GuardError {
            what: what.to_string(),
            value,
            violation: Violation::NonFinite,
        })
    }
}

/// Require `value` to be a probability: finite and within
/// `[-PROB_SLACK, 1 + PROB_SLACK]`. The returned value is clamped to
/// `[0, 1]`, so callers can propagate it without re-clamping.
pub fn checked_prob(what: &str, value: f64) -> Result<f64, GuardError> {
    let v = finite_or_err(what, value)?;
    if v < -PROB_SLACK {
        return Err(GuardError {
            what: what.to_string(),
            value: v,
            violation: Violation::BelowRange,
        });
    }
    if v > 1.0 + PROB_SLACK {
        return Err(GuardError {
            what: what.to_string(),
            value: v,
            violation: Violation::AboveRange,
        });
    }
    Ok(v.clamp(0.0, 1.0))
}

/// Require `value` to be finite and (up to `PROB_SLACK`) non-negative;
/// clamps the slack away like [`checked_prob`].
pub fn checked_nonneg(what: &str, value: f64) -> Result<f64, GuardError> {
    let v = finite_or_err(what, value)?;
    if v < -PROB_SLACK {
        return Err(GuardError {
            what: what.to_string(),
            value: v,
            violation: Violation::BelowRange,
        });
    }
    Ok(v.max(0.0))
}

/// Scale-free residual between two values:
/// `|a − b| / max(|a|, |b|, 1)`. Equal values (including two zeros) give
/// `0`; a `NaN` on either side gives `NaN` so the caller's tolerance test
/// fails.
pub fn relative_gap(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// `true` iff [`relative_gap`] of `a` and `b` is within `tol` (strictly:
/// `NaN` gaps fail).
pub fn within_rel(a: f64, b: f64, tol: f64) -> bool {
    relative_gap(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_passes_rejects() {
        assert_eq!(finite_or_err("x", 1.5), Ok(1.5));
        assert_eq!(
            finite_or_err("x", f64::NAN).unwrap_err().violation,
            Violation::NonFinite
        );
        assert_eq!(
            finite_or_err("x", f64::INFINITY).unwrap_err().violation,
            Violation::NonFinite
        );
    }

    #[test]
    fn prob_clamps_slack_and_rejects_junk() {
        assert_eq!(checked_prob("p", 0.5), Ok(0.5));
        assert_eq!(checked_prob("p", -1e-12), Ok(0.0));
        assert_eq!(checked_prob("p", 1.0 + 1e-12), Ok(1.0));
        assert_eq!(
            checked_prob("p", -0.1).unwrap_err().violation,
            Violation::BelowRange
        );
        assert_eq!(
            checked_prob("p", 1.1).unwrap_err().violation,
            Violation::AboveRange
        );
        assert_eq!(
            checked_prob("p", f64::NAN).unwrap_err().violation,
            Violation::NonFinite
        );
    }

    #[test]
    fn nonneg_allows_any_magnitude_above_zero() {
        assert_eq!(checked_nonneg("e", 123.0), Ok(123.0));
        assert_eq!(checked_nonneg("e", -1e-12), Ok(0.0));
        assert!(checked_nonneg("e", -0.5).is_err());
    }

    #[test]
    fn relative_gap_is_scale_free() {
        assert_eq!(relative_gap(1.0, 1.0), 0.0);
        assert_eq!(relative_gap(0.0, 0.0), 0.0);
        assert!((relative_gap(1e10, 1.0000001e10) - 1e-7).abs() < 1e-12);
        assert!(relative_gap(f64::NAN, 1.0).is_nan());
        assert!(!within_rel(f64::NAN, 1.0, 1e-6));
        assert!(within_rel(1.0, 1.0 + 1e-10, 1e-9));
        assert!(!within_rel(1.0, 1.01, 1e-9));
    }

    #[test]
    fn guard_error_displays_cause() {
        let e = checked_prob("B_1", 1.5).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("B_1") && s.contains("above range"), "{s}");
    }
}

//! Special functions and combinatorics.
//!
//! The crossbar product form is built from factorial ratios
//! `Ψ(k) = N1!/(N1−k·A)! · N2!/(N2−k·A)!` and binomial scalings
//! `ρ_r = ρ̃_r / C(N2, a_r)`. This module provides those pieces in three
//! flavours: exact (`u128`, for the sizes where they fit), floating
//! (`f64`, for direct use in formulas), and log-domain (for the oracle
//! implementations that cross-check the lattice recursions).

/// Natural log of the gamma function, via the Lanczos approximation (g = 7,
/// n = 9), accurate to ~1e-13 relative error for `x > 0`.
///
/// # Panics
/// Panics for `x ≤ 0` (the reproduction never needs the reflection branch,
/// and silently extending it would mask logic errors).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g = 7 from Godfrey / Numerical Recipes.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)`.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact accumulation for small n (cheap and exact to f64), ln_gamma above.
    if n < 2 {
        return 0.0;
    }
    if n <= 20 {
        let mut f = 1u64;
        for i in 2..=n {
            f *= i;
        }
        return (f as f64).ln();
    }
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`; `-inf` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln P(n, k) = ln(n!/(n−k)!)`; `-inf` when `k > n`.
pub fn ln_permutation(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(n - k)
}

/// Binomial coefficient `C(n, k)` as `f64` (0 when `k > n`).
///
/// Exact (correctly rounded) whenever the exact value fits `u128`; falls back
/// to `exp(ln C(n,k))` beyond, which is accurate to ~1e-12 relative error.
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    match binomial_exact(n, k) {
        Some(v) => v as f64,
        None => ln_binomial(n, k).exp(),
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Exact binomial coefficient, or `None` on `u128` overflow.
///
/// Uses divide-before-multiply: after reducing `num/den` by their gcd, the
/// running prefix `C(n, i)` is always divisible by `den` (the prefix times
/// `num/den` is the next binomial, an integer, with `gcd(num, den) = 1`), so
/// intermediates never exceed the final value times `num`.
pub fn binomial_exact(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        let g = gcd((n - i) as u128, (i + 1) as u128);
        let num = (n - i) as u128 / g;
        let den = (i + 1) as u128 / g;
        debug_assert_eq!(acc % den, 0);
        acc = (acc / den).checked_mul(num)?;
    }
    Some(acc)
}

/// Falling factorial / permutations `P(n, k) = n·(n−1)···(n−k+1)` as `f64`
/// (0 when `k > n`). The paper's eq. 11.
pub fn permutation(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64;
    }
    acc
}

/// Exact permutations `P(n, k)`, or `None` on `u128` overflow.
pub fn permutation_exact(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul((n - i) as u128)?;
    }
    Some(acc)
}

/// Falling factorial for real `x`: `x·(x−1)···(x−k+1)`.
pub fn falling_factorial(x: f64, k: u32) -> f64 {
    let mut acc = 1.0;
    for i in 0..k {
        acc *= x - i as f64;
    }
    acc
}

/// Generalised binomial coefficient `C(x, k)` for real `x` — used for the
/// Pascal term `C(α/β − 1 + k, k)` of the product form.
pub fn binomial_real(x: f64, k: u32) -> f64 {
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (x - i as f64) / (k - i) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..=170u64 {
            fact *= n as f64;
            close(ln_gamma(n as f64 + 1.0), fact.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π/2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_factorial_agrees_with_ln_gamma_at_crossover() {
        for n in 15..=30u64 {
            close(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-12);
        }
    }

    #[test]
    fn binomial_small_values_exact() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 5), 252.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
        assert_eq!(binomial(5, 7), 0.0);
    }

    #[test]
    fn binomial_exact_matches_float() {
        for n in 0..=60u64 {
            for k in 0..=n {
                let e = binomial_exact(n, k).unwrap();
                if e < (1u128 << 53) {
                    assert_eq!(e as f64, binomial(n, k), "C({n},{k})");
                }
            }
        }
    }

    #[test]
    fn binomial_exact_overflow_is_none() {
        assert!(binomial_exact(300, 150).is_none());
        assert!(binomial_exact(128, 64).is_some());
    }

    #[test]
    fn permutation_values() {
        assert_eq!(permutation(5, 0), 1.0);
        assert_eq!(permutation(5, 2), 20.0);
        assert_eq!(permutation(5, 5), 120.0);
        assert_eq!(permutation(3, 4), 0.0);
        assert_eq!(permutation_exact(10, 3), Some(720));
    }

    #[test]
    fn ln_variants_consistent_with_direct() {
        for n in [5u64, 32, 128, 256] {
            for k in [0u64, 1, 2, 5] {
                if k <= n {
                    close(ln_binomial(n, k), binomial(n, k).ln(), 1e-11);
                    close(ln_permutation(n, k), permutation(n, k).ln(), 1e-11);
                }
            }
        }
        assert_eq!(ln_binomial(3, 9), f64::NEG_INFINITY);
        assert_eq!(ln_permutation(3, 9), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_real_matches_integer_case() {
        for n in 1..=12u32 {
            for k in 0..=n {
                close(
                    binomial_real(n as f64, k),
                    binomial(n as u64, k as u64),
                    1e-12,
                );
            }
        }
    }

    #[test]
    fn binomial_real_negative_upper_index() {
        // C(-1, k) = (-1)^k — the Pascal/geometric boundary case.
        for k in 0..6u32 {
            close(binomial_real(-1.0, k), (-1.0f64).powi(k as i32), 1e-12);
        }
    }

    #[test]
    fn falling_factorial_basics() {
        assert_eq!(falling_factorial(5.0, 0), 1.0);
        assert_eq!(falling_factorial(5.0, 3), 60.0);
        close(falling_factorial(0.5, 2), 0.5 * -0.5, 1e-15);
    }

    #[test]
    fn pascal_binomial_identity() {
        // C(s-1+k, k) with s = 3: the negative-binomial weight.
        let s = 3.0;
        for k in 0..8u32 {
            let direct = binomial_real(s - 1.0 + k as f64, k);
            let exact = binomial_exact(2 + k as u64, k as u64).unwrap() as f64;
            close(direct, exact, 1e-12);
        }
    }
}

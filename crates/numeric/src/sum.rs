//! Compensated summation and log-domain accumulation.
//!
//! The brute-force oracle sums the product form over the whole state space
//! `Γ(N)`; terms span many orders of magnitude, so naive accumulation loses
//! digits exactly where we want a ground truth. [`NeumaierSum`] (improved
//! Kahan) keeps the oracle honest, and [`logsumexp`] supports the log-domain
//! backend.

/// Neumaier's improved Kahan–Babuška compensated summation.
///
/// Error is `O(ε)` independent of the number of terms, versus `O(n·ε)` for a
/// naive loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    /// An empty (zero) accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = NeumaierSum::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// `ln(e^a + e^b)`, robust to large magnitudes; identity element is `-inf`.
pub fn logsumexp_pair(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `ln Σ e^{x_i}` over a slice; `-inf` for an empty slice.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut acc = NeumaierSum::new();
    for &x in xs {
        acc.add((x - hi).exp());
    }
    hi + acc.value().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_classic_cancellation_case() {
        // The textbook case where plain Kahan fails: [1, 1e100, 1, -1e100].
        let mut s = NeumaierSum::new();
        for x in [1.0, 1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn neumaier_many_small_terms() {
        let mut s = NeumaierSum::new();
        for _ in 0..10_000_000 {
            s.add(0.1);
        }
        assert!((s.value() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn neumaier_from_iterator() {
        let s: NeumaierSum = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.value(), 5050.0);
    }

    #[test]
    fn logsumexp_pair_basics() {
        let r = logsumexp_pair(0.0, 0.0);
        assert!((r - 2f64.ln()).abs() < 1e-15);
        assert_eq!(logsumexp_pair(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(logsumexp_pair(3.0, f64::NEG_INFINITY), 3.0);
        // Huge magnitudes must not overflow.
        let r = logsumexp_pair(-1e6, -1e6 + 1.0);
        assert!((r - (-1e6 + 1.0 + 1f64.exp().recip().ln_1p())).abs() < 1e-9);
    }

    #[test]
    fn logsumexp_slice_matches_direct_in_range() {
        let xs = [0.1f64, 0.5, -0.3, 2.0];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((logsumexp(&xs) - direct).abs() < 1e-14);
    }

    #[test]
    fn logsumexp_empty_and_singleton() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
        assert_eq!(logsumexp(&[-5.0]), -5.0);
    }

    #[test]
    fn logsumexp_extreme_range() {
        // Terms of wildly different scales: answer dominated by the max.
        let xs = [-2000.0, -3000.0, -2000.0];
        let expect = -2000.0 + 2f64.ln();
        assert!((logsumexp(&xs) - expect).abs() < 1e-12);
    }
}

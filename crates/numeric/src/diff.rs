//! Finite-difference derivatives.
//!
//! The paper (§4) reports that no closed form was found for the revenue
//! gradient `∂W/∂(β_r/μ_r)` when bursty classes are present, and approximates
//! it "via a forward difference". These helpers implement that forward
//! difference (for fidelity with the paper's Table 2) and a central
//! difference (for accuracy cross-checks), both with curvature-scaled steps.

/// Machine-epsilon-derived default relative step for forward differences
/// (`√ε`, the classical optimum for first-order schemes).
pub const FORWARD_STEP: f64 = 1.4901161193847656e-8; // f64::EPSILON.sqrt()

/// Default relative step for central differences (`ε^(1/3)`).
pub const CENTRAL_STEP: f64 = 6.055454452393343e-6; // f64::EPSILON.cbrt()

fn step(x: f64, rel: f64) -> f64 {
    let h = rel * x.abs().max(1.0);
    // Ensure x + h differs from x in floating point.
    let xh = x + h;
    xh - x
}

/// Forward-difference derivative `(f(x+h) − f(x))/h`, the scheme the paper
/// uses for `∂W/∂(β_r/μ_r)` (§4).
pub fn forward_diff<F: FnMut(f64) -> f64>(mut f: F, x: f64) -> f64 {
    let h = step(x, FORWARD_STEP);
    (f(x + h) - f(x)) / h
}

/// Central-difference derivative `(f(x+h) − f(x−h))/(2h)` — second-order
/// accurate; used to validate the forward differences.
pub fn central_diff<F: FnMut(f64) -> f64>(mut f: F, x: f64) -> f64 {
    let h = step(x, CENTRAL_STEP);
    (f(x + h) - f(x - h)) / (2.0 * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_diff_on_polynomials() {
        // d/dx (3x² + 2x + 1) = 6x + 2
        let f = |x: f64| 3.0 * x * x + 2.0 * x + 1.0;
        for &x in &[0.0, 1.0, -2.5, 100.0] {
            let d = forward_diff(f, x);
            assert!((d - (6.0 * x + 2.0)).abs() < 1e-5 * (1.0 + x.abs()), "{x}");
        }
    }

    #[test]
    fn central_diff_beats_forward_on_exp() {
        let x = 1.3f64;
        let fd = forward_diff(f64::exp, x);
        let cd = central_diff(f64::exp, x);
        let exact = x.exp();
        assert!((cd - exact).abs() < (fd - exact).abs().max(1e-12));
        assert!((cd - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn step_never_degenerates() {
        // At x = 0 the step must still be nonzero.
        let d = forward_diff(|x| 5.0 * x, 0.0);
        assert!((d - 5.0).abs() < 1e-6);
    }

    #[test]
    fn diff_of_constant_is_zero() {
        assert_eq!(forward_diff(|_| 42.0, 3.0), 0.0);
        assert_eq!(central_diff(|_| 42.0, 3.0), 0.0);
    }
}

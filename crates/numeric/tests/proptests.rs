//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use xbar_numeric::extfloat::{frexp, ldexp};
use xbar_numeric::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL | prop::num::f64::ZERO | prop::num::f64::SUBNORMAL
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
    (a - b).abs() / scale < tol
}

proptest! {
    #[test]
    fn frexp_ldexp_round_trip(x in finite_f64()) {
        let (m, e) = frexp(x);
        prop_assert!(m == 0.0 || (0.5..1.0).contains(&m.abs()));
        prop_assert!(close(ldexp(m, e as i64), x, 1e-15));
    }

    #[test]
    fn extfloat_add_commutes(a in -1e30f64..1e30, b in -1e30f64..1e30) {
        let (ea, eb) = (ExtFloat::from_f64(a), ExtFloat::from_f64(b));
        prop_assert!(close((ea + eb).to_f64(), (eb + ea).to_f64(), 1e-15));
    }

    #[test]
    fn extfloat_mul_matches_f64(a in -1e100f64..1e100, b in -1e100f64..1e100) {
        let prod = (ExtFloat::from_f64(a) * ExtFloat::from_f64(b)).to_f64();
        prop_assert!(close(prod, a * b, 1e-14));
    }

    #[test]
    fn extfloat_add_matches_f64(a in -1e100f64..1e100, b in -1e100f64..1e100) {
        let sum = (ExtFloat::from_f64(a) + ExtFloat::from_f64(b)).to_f64();
        prop_assert!(close(sum, a + b, 1e-12) || (a + b).abs() < 1e-30 * a.abs().max(b.abs()));
    }

    #[test]
    fn extfloat_div_inverts_mul(a in 1e-100f64..1e100, b in 1e-100f64..1e100) {
        let (ea, eb) = (ExtFloat::from_f64(a), ExtFloat::from_f64(b));
        let back = (ea * eb / eb).to_f64();
        prop_assert!(close(back, a, 1e-14));
    }

    #[test]
    fn extfloat_ln_matches_f64(a in 1e-300f64..1e300) {
        prop_assert!(close(ExtFloat::from_f64(a).ln(), a.ln(), 1e-12));
    }

    #[test]
    fn extfloat_ratio_is_scale_invariant(
        a in 1e-10f64..1e10,
        b in 1e-10f64..1e10,
        shift in -3000i64..3000,
    ) {
        // (a·2^s)/(b·2^s) must equal a/b even when the scaled values are far
        // outside f64 range — the property that makes the paper's measures
        // computable at N = 256.
        let ea = ExtFloat::from_parts(a, shift);
        let eb = ExtFloat::from_parts(b, shift);
        prop_assert!(close(ea.ratio(eb), a / b, 1e-13));
    }

    #[test]
    fn extfloat_ordering_matches_f64(a in -1e50f64..1e50, b in -1e50f64..1e50) {
        let ea = ExtFloat::from_f64(a);
        let eb = ExtFloat::from_f64(b);
        prop_assert_eq!(ea.partial_cmp(&eb), a.partial_cmp(&b));
    }

    #[test]
    fn extfloat_exp_consistent_with_ln(x in -5000.0f64..5000.0) {
        prop_assert!(close(ExtFloat::exp(x).ln(), x, 1e-10) || x.abs() < 1e-12);
    }

    #[test]
    fn neumaier_at_least_as_good_as_naive(xs in prop::collection::vec(-1e6f64..1e6, 0..200)) {
        let naive: f64 = xs.iter().sum();
        let comp: NeumaierSum = xs.iter().cloned().collect();
        // Reference: two-pass sorted-by-magnitude summation in f64 is not
        // exact either; just require agreement to a loose bound.
        prop_assert!(close(comp.value(), naive, 1e-9) || naive.abs() < 1e-3);
    }

    #[test]
    fn logsumexp_shift_invariance(xs in prop::collection::vec(-50f64..50.0, 1..20), c in -1e4f64..1e4) {
        let base = logsumexp(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!(close(logsumexp(&shifted), base + c, 1e-10));
    }

    #[test]
    fn logsumexp_pair_agrees_with_slice(a in -700f64..700.0, b in -700f64..700.0) {
        prop_assert!(close(logsumexp_pair(a, b), logsumexp(&[a, b]), 1e-12));
    }

    #[test]
    fn binomial_pascal_rule(n in 1u64..200, k in 1u64..200) {
        prop_assume!(k <= n);
        // C(n,k) = C(n-1,k-1) + C(n-1,k)
        let lhs = binomial(n, k);
        let rhs = binomial(n - 1, k - 1) + binomial(n - 1, k);
        prop_assert!(close(lhs, rhs, 1e-10));
    }

    #[test]
    fn binomial_symmetry(n in 0u64..300, k in 0u64..300) {
        prop_assume!(k <= n);
        prop_assert!(close(binomial(n, k), binomial(n, n - k), 1e-10));
    }

    #[test]
    fn permutation_binomial_relation(n in 0u64..100, k in 0u64..20) {
        prop_assume!(k <= n);
        // P(n,k) = C(n,k) · k!
        let kfact: f64 = (1..=k).map(|i| i as f64).product();
        prop_assert!(close(permutation(n, k), binomial(n, k) * kfact, 1e-10));
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.5f64..500.0) {
        // ln Γ(x+1) = ln Γ(x) + ln x
        prop_assert!(close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-10));
    }

    #[test]
    fn ln_permutation_consistency(n in 0u64..2000, k in 0u64..50) {
        prop_assume!(k <= n);
        // ln P(n,k) = Σ ln(n-i)
        let direct: f64 = (0..k).map(|i| ((n - i) as f64).ln()).sum();
        prop_assert!(close(ln_permutation(n, k), direct, 1e-9));
    }

    #[test]
    fn central_diff_accurate_on_smooth_functions(x in -3.0f64..3.0, a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let f = |t: f64| a * t.sin() + b * t * t;
        let exact = a * x.cos() + 2.0 * b * x;
        let d = central_diff(f, x);
        prop_assert!((d - exact).abs() < 1e-6 * (1.0 + exact.abs()));
    }
}

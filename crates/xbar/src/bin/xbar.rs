//! `xbar` — command-line front-end: solve a crossbar model (analytically)
//! or simulate it, straight from shell arguments.
//!
//! ```text
//! xbar solve --n 32 --class poisson:rho=0.0012,tilde --class bpp:alpha=0.0012,beta=0.0012,tilde,w=0.0001
//! xbar solve --n 200 --resilient --cross-check-tol 1e-9 --class poisson:rho=1e-5
//! xbar sim   --n 16 --class bpp:alpha=0.02,beta=0.01 --duration 50000 --seed 7
//! xbar sim   --n 8 --class poisson:rho=0.1 --port-mtbf 500 --port-mttr 50
//! xbar serve --n 16 --class poisson:rho=0.1 --data-dir /var/lib/xbar --tail events.log
//! ```
//!
//! All the parsing and execution logic lives in [`xbar::cli`] so it can be
//! tested (including property tests asserting it never panics). This
//! binary only maps [`xbar::cli::CliError`] onto process exit codes:
//! 0 success, 2 usage/model error, 3 solve failure, 4 cross-check failure,
//! 5 simulator configuration error, 6 metrics/invariant failure, 7 serve
//! tenant(s) quarantined.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match xbar::cli::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

//! `xbar` — command-line front-end: solve a crossbar model (analytically)
//! or simulate it, straight from shell arguments.
//!
//! ```text
//! xbar solve --n 32 --class poisson:rho=0.0012,tilde --class bpp:alpha=0.0012,beta=0.0012,tilde,w=0.0001
//! xbar solve --n1 16 --n2 24 --algorithm alg2-mva --class poisson:rho=0.01,a=2
//! xbar sim   --n 16 --class bpp:alpha=0.02,beta=0.01 --duration 50000 --seed 7
//! ```
//!
//! Class specs are `kind:key=value,...`:
//! * `poisson:rho=<f64>` — Poisson class with offered load ρ;
//! * `bpp:alpha=<f64>,beta=<f64>` — general BPP class;
//! * optional keys on either: `mu=<f64>` (default 1), `a=<u32>` bandwidth
//!   (default 1), `w=<f64>` revenue weight (default 1), and the flag
//!   `tilde` marking the rates as aggregated over output sets (the
//!   paper's `α̃/β̃/ρ̃` convention; they are divided by `C(N2, a)`).

use std::process::ExitCode;

use xbar::{
    solve, Algorithm, CrossbarSim, Dims, Model, RunConfig, SimConfig, TildeClass, TrafficClass,
    Workload,
};

fn usage() -> String {
    "usage:\n  xbar solve --n <N> | --n1 <N1> --n2 <N2> \
     [--algorithm auto|alg1-f64|alg1-scaled|alg1-ext|alg2-mva|alg3-convolution] \
     --class <spec> [--class <spec> ...]\n  \
     xbar sim   --n <N> | --n1 <N1> --n2 <N2> --class <spec> [...] \
     [--duration <t>] [--warmup <t>] [--seed <u64>]\n\n\
     class spec: poisson:rho=0.0012[,mu=1][,a=1][,w=1][,tilde]\n                 \
     bpp:alpha=0.001,beta=0.0005[,mu=1][,a=1][,w=1][,tilde]"
        .to_string()
}

/// A parsed class spec, before tilde resolution.
#[derive(Debug, Clone, PartialEq)]
struct ClassSpec {
    alpha: f64,
    beta: f64,
    mu: f64,
    a: u32,
    w: f64,
    tilde: bool,
}

fn parse_class(spec: &str) -> Result<ClassSpec, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("class spec '{spec}' missing ':'"))?;
    let mut alpha = None;
    let mut beta = 0.0f64;
    let mut rho = None;
    let mut mu = 1.0f64;
    let mut a = 1u32;
    let mut w = 1.0f64;
    let mut tilde = false;
    for part in rest.split(',').filter(|p| !p.is_empty()) {
        if part == "tilde" {
            tilde = true;
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad key=value '{part}' in '{spec}'"))?;
        let v: f64 = value
            .parse()
            .map_err(|_| format!("bad number '{value}' in '{spec}'"))?;
        match key {
            "alpha" => alpha = Some(v),
            "beta" => beta = v,
            "rho" => rho = Some(v),
            "mu" => mu = v,
            "a" => a = v as u32,
            "w" => w = v,
            other => return Err(format!("unknown key '{other}' in '{spec}'")),
        }
    }
    let alpha = match kind {
        "poisson" => {
            if beta != 0.0 {
                return Err("poisson class cannot set beta".into());
            }
            rho.ok_or("poisson class needs rho=")? * mu
        }
        "bpp" => alpha.ok_or("bpp class needs alpha=")?,
        other => return Err(format!("unknown class kind '{other}'")),
    };
    Ok(ClassSpec {
        alpha,
        beta,
        mu,
        a,
        w,
        tilde,
    })
}

struct Args {
    command: String,
    n1: u32,
    n2: u32,
    algorithm: Algorithm,
    classes: Vec<ClassSpec>,
    duration: f64,
    warmup: f64,
    seed: u64,
}

fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    Ok(match s {
        "auto" => Algorithm::Auto,
        "alg1-f64" => Algorithm::Alg1F64,
        "alg1-scaled" => Algorithm::Alg1Scaled,
        "alg1-ext" => Algorithm::Alg1Ext,
        "alg2-mva" => Algorithm::Mva,
        "alg3-convolution" => Algorithm::Convolution,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    let command = it.next().ok_or_else(usage)?.clone();
    if command != "solve" && command != "sim" {
        return Err(format!("unknown command '{command}'\n{}", usage()));
    }
    let mut n1 = None;
    let mut n2 = None;
    let mut algorithm = Algorithm::Auto;
    let mut classes = Vec::new();
    let mut duration = 100_000.0;
    let mut warmup = 1_000.0;
    let mut seed = 42u64;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => {
                let v: u32 = value()?.parse().map_err(|e| format!("--n: {e}"))?;
                n1 = Some(v);
                n2 = Some(v);
            }
            "--n1" => n1 = Some(value()?.parse().map_err(|e| format!("--n1: {e}"))?),
            "--n2" => n2 = Some(value()?.parse().map_err(|e| format!("--n2: {e}"))?),
            "--algorithm" => algorithm = parse_algorithm(&value()?)?,
            "--class" => classes.push(parse_class(&value()?)?),
            "--duration" => duration = value()?.parse().map_err(|e| format!("--duration: {e}"))?,
            "--warmup" => warmup = value()?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    let n1 = n1.ok_or("missing --n or --n1")?;
    let n2 = n2.ok_or("missing --n or --n2")?;
    if classes.is_empty() {
        return Err("need at least one --class".into());
    }
    Ok(Args {
        command,
        n1,
        n2,
        algorithm,
        classes,
        duration,
        warmup,
        seed,
    })
}

fn build_model(args: &Args) -> Result<Model, String> {
    let mut workload = Workload::new();
    for spec in &args.classes {
        let class = if spec.tilde {
            TildeClass {
                alpha_tilde: spec.alpha,
                beta_tilde: spec.beta,
                mu: spec.mu,
                bandwidth: spec.a,
                weight: spec.w,
            }
            .resolve(args.n2)
        } else {
            TrafficClass {
                alpha: spec.alpha,
                beta: spec.beta,
                mu: spec.mu,
                bandwidth: spec.a,
                weight: spec.w,
            }
        };
        workload = workload.with(class);
    }
    Model::new(Dims::new(args.n1, args.n2), workload).map_err(|e| e.to_string())
}

fn run_solve(args: &Args) -> Result<(), String> {
    let model = build_model(args)?;
    let sol = solve(&model, args.algorithm).map_err(|e| e.to_string())?;
    println!(
        "solved {}x{} with {} classes (algorithm: {})",
        args.n1,
        args.n2,
        model.num_classes(),
        args.algorithm
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "class", "blocking", "B_r", "E_r", "throughput", "acceptance"
    );
    for r in 0..model.num_classes() {
        println!(
            "{r:>6} {:>12.6} {:>12.6} {:>12.4} {:>12.4} {:>12.6}",
            sol.blocking(r),
            sol.nonblocking(r),
            sol.concurrency(r),
            sol.throughput(r),
            sol.call_acceptance(r),
        );
    }
    println!(
        "revenue W = {:.6}   total throughput = {:.4}",
        sol.revenue(),
        sol.total_throughput()
    );
    for r in 0..model.num_classes() {
        println!(
            "class {r}: shadow cost = {:.6}, dW/drho = {:+.4}",
            sol.shadow_cost(r),
            sol.revenue_gradient_rho(r)
        );
    }
    Ok(())
}

fn run_sim(args: &Args) -> Result<(), String> {
    let model = build_model(args)?;
    let mut cfg = SimConfig::new(args.n1, args.n2);
    for class in model.workload().classes() {
        cfg = cfg.with_exp_class(class.clone());
    }
    let mut sim = CrossbarSim::new(cfg, args.seed);
    let rep = sim.run(RunConfig {
        warmup: args.warmup,
        duration: args.duration,
        batches: 20,
    });
    println!(
        "simulated {}x{} for t = {} ({} events, seed {})",
        args.n1, args.n2, args.duration, rep.events, args.seed
    );
    println!(
        "{:>6} {:>10} {:>10} {:>22} {:>22}",
        "class", "offered", "blocked", "blocking (95% CI)", "availability (95% CI)"
    );
    for (r, c) in rep.classes.iter().enumerate() {
        println!(
            "{r:>6} {:>10} {:>10} {:>14.6} ±{:.6} {:>14.6} ±{:.6}",
            c.offered,
            c.blocked,
            c.blocking.mean,
            c.blocking.half_width,
            c.availability.mean,
            c.availability.half_width,
        );
    }
    println!("revenue rate = {:.6}", rep.revenue);
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "solve" => run_solve(&args),
        "sim" => run_sim(&args),
        _ => unreachable!("validated in parse_args"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_poisson_class() {
        let c = parse_class("poisson:rho=0.5,mu=2,a=2,w=0.3").unwrap();
        assert_eq!(c.alpha, 1.0); // alpha = rho·mu
        assert_eq!(c.beta, 0.0);
        assert_eq!(c.a, 2);
        assert_eq!(c.w, 0.3);
        assert!(!c.tilde);
    }

    #[test]
    fn parses_bpp_class_with_tilde() {
        let c = parse_class("bpp:alpha=0.0012,beta=0.0012,tilde,w=0.0001").unwrap();
        assert_eq!(c.alpha, 0.0012);
        assert_eq!(c.beta, 0.0012);
        assert!(c.tilde);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_class("nope:rho=1").is_err());
        assert!(parse_class("poisson:").is_err());
        assert!(parse_class("poisson:rho=x").is_err());
        assert!(parse_class("poisson:rho=1,beta=2").is_err());
        assert!(parse_class("bpp:beta=0.1").is_err());
        assert!(parse_class("poisson:rho=1,bogus=2").is_err());
        assert!(parse_class("poisson").is_err());
    }

    #[test]
    fn parses_full_solve_command() {
        let a = parse_args(&argv(
            "solve --n 16 --algorithm alg2-mva --class poisson:rho=0.01",
        ))
        .unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!((a.n1, a.n2), (16, 16));
        assert_eq!(a.algorithm, Algorithm::Mva);
        assert_eq!(a.classes.len(), 1);
    }

    #[test]
    fn parses_rectangular_sim_command() {
        let a = parse_args(&argv(
            "sim --n1 8 --n2 12 --class poisson:rho=0.01 --duration 500 --warmup 10 --seed 9",
        ))
        .unwrap();
        assert_eq!((a.n1, a.n2), (8, 12));
        assert_eq!(a.duration, 500.0);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(parse_args(&argv("bogus --n 4")).is_err());
        assert!(parse_args(&argv("solve --n 4")).is_err()); // no class
        assert!(parse_args(&argv("solve --class poisson:rho=1")).is_err()); // no size
        assert!(parse_args(&argv("solve --n 4 --algorithm nope --class poisson:rho=1")).is_err());
        assert!(parse_args(&argv("solve --n")).is_err());
    }

    #[test]
    fn solve_round_trip_matches_library() {
        let a = parse_args(&argv(
            "solve --n 8 --class poisson:rho=0.0024,tilde --class bpp:alpha=0.0012,beta=0.0012,tilde",
        ))
        .unwrap();
        let model = build_model(&a).unwrap();
        // Tilde resolution happened: per-set rho = 0.0024/8.
        let c0 = &model.workload().classes()[0];
        assert!((c0.alpha - 0.0003).abs() < 1e-12);
        let sol = solve(&model, Algorithm::Auto).unwrap();
        assert!(sol.blocking(0) > 0.0 && sol.blocking(0) < 0.01);
    }
}

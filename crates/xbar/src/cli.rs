//! Command-line parsing and execution for the `xbar` binary.
//!
//! Lives in the library (rather than the binary) so the parser can be
//! unit- and property-tested: malformed argument vectors must always come
//! back as [`CliError`] values — never panics — and every failure maps to
//! a documented exit code:
//!
//! | code | meaning                                           |
//! |------|---------------------------------------------------|
//! | 0    | success                                           |
//! | 2    | usage or model error (bad flags, invalid classes) |
//! | 3    | solve failure (all backends exhausted, …)         |
//! | 4    | cross-check failure (backends disagree)           |
//! | 5    | simulator configuration error                     |
//! | 6    | metrics failure (broken invariant, unwritable)    |
//! | 7    | serve: tenant(s) quarantined after repeated faults|
//! | 8    | plan: SLO set infeasible over the design space     |

use std::time::Duration;

use xbar_admission::{AdmissionEngine, AdmissionError, EngineConfig, PolicySpec};
use xbar_core::solver::resilient::{solve_resilient, ResilientConfig};
use xbar_core::{solve, Algorithm, Dims, Model, SolveError, SweepSolver};
use xbar_plan::{DesignSpace, PlanConfig, PlanError, RhoAxis, Slo};
use xbar_sim::{
    replay, run_sim_replications, Confidence, CrossbarSim, FaultConfig, RepConfig, ReplayConfig,
    RunConfig, SimConfig,
};
use xbar_traffic::{TildeClass, TrafficClass, Workload};

/// A CLI failure, carrying the process exit code it maps to.
#[derive(Clone, Debug, PartialEq)]
pub enum CliError {
    /// Bad flags / malformed specs / invalid model (exit 2).
    Usage(String),
    /// The analytic solve failed (exit 3).
    Solve(String),
    /// The resilient pipeline's cross-check disagreed (exit 4).
    CrossCheck(String),
    /// The simulator rejected its configuration (exit 5).
    SimConfig(String),
    /// Metrics emission failed: an obs counter invariant is broken, or the
    /// snapshot could not be written (exit 6).
    Metrics(String),
    /// The serve daemon quarantined one or more tenants after repeated
    /// supervised failures (exit 7). The fleet kept running; the exit code
    /// flags the degradation for the operator.
    Quarantine(String),
    /// The plan search finished cleanly but no evaluated design satisfied
    /// every SLO (exit 8). Deliberately distinct from [`CliError::Solve`]:
    /// the solver worked, the *requirements* are unsatisfiable over the
    /// given space.
    Infeasible(String),
}

impl CliError {
    /// The process exit code for this failure.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Solve(_) => 3,
            CliError::CrossCheck(_) => 4,
            CliError::SimConfig(_) => 5,
            CliError::Metrics(_) => 6,
            CliError::Quarantine(_) => 7,
            CliError::Infeasible(_) => 8,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Solve(m) => write!(f, "solve failed: {m}"),
            CliError::CrossCheck(m) => write!(f, "{m}"),
            CliError::SimConfig(m) => write!(f, "invalid simulation config: {m}"),
            CliError::Metrics(m) => write!(f, "metrics error: {m}"),
            CliError::Quarantine(m) => write!(f, "quarantine: {m}"),
            CliError::Infeasible(m) => write!(f, "infeasible: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

fn usage() -> String {
    "usage:\n  xbar solve --n <N> | --n1 <N1> --n2 <N2> \
     [--algorithm auto|alg1-f64|alg1-scaled|alg1-ext|alg2-mva|alg3-convolution] \
     [--resilient] [--cross-check-tol <tol>] [--threads <N>] [--metrics <path|->] \
     --class <spec> [--class <spec> ...]\n  \
     xbar sim   --n <N> | --n1 <N1> --n2 <N2> --class <spec> [...] \
     [--duration <t>] [--warmup <t>] [--seed <u64>] [--replications <n>] \
     [--threads <N>] [--metrics <path|->] \
     [--port-mtbf <t> --port-mttr <t>] [--fail-inputs <k>] [--fail-outputs <k>]\n  \
     xbar admit --n <N> | --n1 <N1> --n2 <N2> --class <spec> [...] \
     [--policy cs|trunk:t0,t1,...|shadow[:reserve=N]] [--replay-events <n>] \
     [--reprice-batch <n>] [--trace <path>] [--cross-check] [--seed <u64>] \
     [--metrics <path|->]\n  \
     xbar sweep --n <N> | --n1 <N1> --n2 <N2> --class <spec> [...] \
     --alpha <a0:a1:steps> [--sweep-class <r>] \
     [--algorithm auto|alg1-f64|alg1-scaled|alg1-ext] [--threads <N>] \
     [--metrics <path|->]\n  \
     xbar serve --n <N> | --n1 <N1> --n2 <N2> --class <spec> [...] \
     --data-dir <dir> --file <trace> | --tail <trace> | --socket <path> \
     [--policy <spec>] [--queue-cap <n>] [--snapshot-interval <n>] \
     [--max-failures <n>] [--reanchor-deadline-ms <ms>] [--reprice-batch <n>] \
     [--sync-every <n>] [--idle-timeout-ms <ms>] [--kill-after <n>] \
     [--metrics <path|->]\n  \
     xbar fleet --models <path> \
     [--algorithm auto|alg1-f64|alg1-scaled|alg1-ext|alg2-mva|alg3-convolution] \
     [--simd scalar|strict|fast] [--threads <N>] [--metrics <path|->]\n  \
     xbar plan  --n <N> | --n1 <N1> --n2 <N2> --class <spec> [...] \
     [--geo <N|N1xN2> ...] [--rho-axis <r:lo:hi:steps> ...] \
     [--slo <r:maxblock> ...] [--strategy exhaustive|gradient] \
     [--objective w] [--frontier-csv <path>] [--contour-csv <path>] \
     [--threads <N>] [--metrics <path|->]\n\n\
     sweep varies class r's per-set arrival intercept alpha across the grid \
     through one cached SweepSolver precompute (each point is an O(N) \
     recombination, not a fresh solve)\n\
     admit replays synthetic BPP call events (or an 'a <class>'/'d <class>' \
     trace file) through the online admission engine; --cross-check asserts \
     the admitted fraction against the analytic acceptance (CS policy only); \
     --reprice-batch re-derives the policy thresholds from the per-anchor \
     cached sensitivity gradients every <n> events (admit and serve)\n\
     serve runs the fault-tolerant multi-tenant admission daemon over \
     '<tenant> a|d <class> [@t]' lines with a WAL + snapshots under \
     --data-dir; exit 7 means tenant(s) ended quarantined\n\
     fleet batch-solves every model in --models (one per line: \
     '<N>|<N1>x<N2> <class-spec> [<class-spec> ...]', # comments) as one \
     deduped batch sharded over the worker pool; --simd picks the sweep \
     recombination kernels (default strict: bit-for-bit scalar)\n\
     plan searches the design space (candidate --geo geometries x the \
     --rho-axis offered-load grids) for the revenue-maximal design whose \
     per-class call blocking honours every --slo, prints a multi-analyzer \
     report, and exits 8 when no design is feasible; --strategy gradient \
     uses projected ascent on the exact dW/drho shadow prices instead of \
     exhaustive enumeration\n\
     --threads 0 (default) auto-detects via available_parallelism\n\
     --metrics writes an obs snapshot as JSON to <path> after the run \
     (- prints a text table instead)\n\n\
     class spec: poisson:rho=0.0012[,mu=1][,a=1][,w=1][,tilde]\n                 \
     bpp:alpha=0.001,beta=0.0005[,mu=1][,a=1][,w=1][,tilde]"
        .to_string()
}

/// A parsed class spec, before tilde resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Arrival-rate intercept `α` (already multiplied out for `rho=`).
    pub alpha: f64,
    /// Arrival-rate slope `β`.
    pub beta: f64,
    /// Service rate `μ`.
    pub mu: f64,
    /// Bandwidth `a` (ports per connection).
    pub a: u32,
    /// Revenue weight `w`.
    pub w: f64,
    /// Whether the rates are tilde-aggregated (divided by `C(N2, a)`).
    pub tilde: bool,
}

/// Parse one `kind:key=value,...` class spec.
pub fn parse_class(spec: &str) -> Result<ClassSpec, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("class spec '{spec}' missing ':'"))?;
    let mut alpha = None;
    let mut beta = 0.0f64;
    let mut rho = None;
    let mut mu = 1.0f64;
    let mut a = 1u32;
    let mut w = 1.0f64;
    let mut tilde = false;
    for part in rest.split(',').filter(|p| !p.is_empty()) {
        if part == "tilde" {
            tilde = true;
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad key=value '{part}' in '{spec}'"))?;
        let v: f64 = value
            .parse()
            .map_err(|_| format!("bad number '{value}' in '{spec}'"))?;
        match key {
            "alpha" => alpha = Some(v),
            "beta" => beta = v,
            "rho" => rho = Some(v),
            "mu" => mu = v,
            "a" => {
                if !(v.is_finite() && v >= 0.0 && v <= u32::MAX as f64 && v.fract() == 0.0) {
                    return Err(format!("bandwidth a={value} must be a small integer"));
                }
                a = v as u32;
            }
            "w" => w = v,
            other => return Err(format!("unknown key '{other}' in '{spec}'")),
        }
    }
    let alpha = match kind {
        "poisson" => {
            if beta != 0.0 {
                return Err("poisson class cannot set beta".into());
            }
            rho.ok_or("poisson class needs rho=")? * mu
        }
        "bpp" => alpha.ok_or("bpp class needs alpha=")?,
        other => return Err(format!("unknown class kind '{other}'")),
    };
    Ok(ClassSpec {
        alpha,
        beta,
        mu,
        a,
        w,
        tilde,
    })
}

/// Fully parsed command line.
pub struct Args {
    /// `solve`, `sim` or `admit`.
    pub command: String,
    /// Inputs `N1`.
    pub n1: u32,
    /// Outputs `N2`.
    pub n2: u32,
    /// Analytic algorithm (for plain `solve`).
    pub algorithm: Algorithm,
    /// Use the resilient escalation + cross-check pipeline.
    pub resilient: bool,
    /// Cross-check relative tolerance override (resilient mode).
    pub cross_check_tol: Option<f64>,
    /// Solver thread count (`0` = auto via `available_parallelism`).
    pub threads: usize,
    /// Where to emit the obs metrics snapshot (`-` = text table on stdout,
    /// anything else = JSON file path; `None` = metrics disabled).
    pub metrics: Option<String>,
    /// Parsed class specs.
    pub classes: Vec<ClassSpec>,
    /// Measured simulation time.
    pub duration: f64,
    /// Warmup time discarded before measurement.
    pub warmup: f64,
    /// RNG seed.
    pub seed: u64,
    /// Independent replications for `sim` (`0` = one classic single run).
    /// With `n > 0` the run fans `n` seed-derived replications over the
    /// worker pool and reports merged across-replication statistics that
    /// are bitwise identical for any `--threads`/`XBAR_THREADS`.
    pub replications: u64,
    /// Mean time between failures per working port (`0`/absent = never).
    pub port_mtbf: f64,
    /// Mean time to repair per failed port (`0`/absent = never).
    pub port_mttr: f64,
    /// Input ports statically failed from `t = 0`.
    pub fail_inputs: u32,
    /// Output ports statically failed from `t = 0`.
    pub fail_outputs: u32,
    /// Admission policy spec (for `admit`).
    pub policy: String,
    /// Trace file to replay instead of synthetic events (for `admit`).
    pub trace: Option<String>,
    /// Synthetic events to generate (for `admit` without `--trace`).
    pub replay_events: u64,
    /// Assert replay acceptance against the analytic value (exit 4 on
    /// disagreement; complete-sharing policy only).
    pub cross_check: bool,
    /// Which class the `sweep` command varies.
    pub sweep_class: usize,
    /// The `sweep` command's `α` grid as `(a0, a1, steps)`.
    pub alpha_range: Option<(f64, f64, u32)>,
    /// Durable state directory (for `serve`).
    pub data_dir: Option<String>,
    /// Event source (for `serve`): exactly one of file/tail/socket.
    pub serve_source: Option<ServeSource>,
    /// Per-tenant bounded ingest queue (for `serve`; 0 = unbounded).
    pub queue_cap: usize,
    /// Applied events between durable snapshots (for `serve`).
    pub snapshot_interval: u64,
    /// Consecutive supervised failures before quarantine (for `serve`).
    pub max_failures: u32,
    /// Re-anchor latency budget in ms (for `serve`; absent = no deadline).
    pub reanchor_deadline_ms: Option<u64>,
    /// Events per online repricing batch (for `admit` and `serve`;
    /// absent = thresholds refresh only at re-anchor).
    pub reprice_batch: Option<u64>,
    /// WAL fsync cadence in records (for `serve`; 0 = on snapshot only).
    pub sync_every: u64,
    /// Tail/socket idle shutdown in ms (for `serve`).
    pub idle_timeout_ms: u64,
    /// Chaos hook: abort after exactly this many applied events.
    pub kill_after: Option<u64>,
    /// Model spec file (for `fleet`): one model per line.
    pub models_path: Option<String>,
    /// Sweep recombination kernel selection (for `fleet`; absent = the
    /// process default, `XBAR_SIMD` or strict).
    pub simd_mode: Option<xbar_core::KernelMode>,
    /// Candidate geometries (for `plan`; empty = just the base `--n`).
    pub geometries: Vec<Dims>,
    /// Offered-load axes `r:lo:hi:steps` (for `plan`).
    pub rho_axes: Vec<RhoAxis>,
    /// Per-class call-blocking SLOs `r:maxblock` (for `plan`).
    pub slos: Vec<Slo>,
    /// Search strategy (for `plan`): `exhaustive` or `gradient`.
    pub plan_strategy: String,
    /// Where to write the Pareto frontier CSV (for `plan`).
    pub frontier_csv: Option<String>,
    /// Where to write the full contour CSV (for `plan`).
    pub contour_csv: Option<String>,
}

/// Where the `serve` command reads its event stream from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeSource {
    /// Read a trace file once, then shut down cleanly.
    File(String),
    /// Follow a growing file until `!stop` or the idle timeout.
    Tail(String),
    /// Accept line streams on a unix-domain socket until `!stop`.
    Socket(String),
}

/// Parse an `a0:a1:steps` grid spec.
fn parse_alpha_range(s: &str) -> Result<(f64, f64, u32), String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [a0, a1, steps] = parts.as_slice() else {
        return Err(format!("--alpha grid '{s}' must be a0:a1:steps"));
    };
    let a0: f64 = a0.parse().map_err(|_| format!("bad a0 '{a0}' in '{s}'"))?;
    let a1: f64 = a1.parse().map_err(|_| format!("bad a1 '{a1}' in '{s}'"))?;
    let steps: u32 = steps
        .parse()
        .map_err(|_| format!("bad steps '{steps}' in '{s}'"))?;
    if !(a0.is_finite() && a1.is_finite()) {
        return Err(format!("--alpha endpoints must be finite in '{s}'"));
    }
    if steps == 0 {
        return Err("--alpha needs steps >= 1".into());
    }
    Ok((a0, a1, steps))
}

/// Parse a `plan` geometry spec: `N` (square) or `N1xN2`.
fn parse_geo(s: &str) -> Result<Dims, String> {
    let (n1, n2) = match s.split_once('x') {
        Some((a, b)) => (
            a.parse().map_err(|_| format!("bad N1 in --geo '{s}'"))?,
            b.parse().map_err(|_| format!("bad N2 in --geo '{s}'"))?,
        ),
        None => {
            let n: u32 = s.parse().map_err(|_| format!("bad --geo '{s}'"))?;
            (n, n)
        }
    };
    if n1 == 0 || n2 == 0 {
        return Err(format!("--geo '{s}' needs N1, N2 >= 1"));
    }
    Ok(Dims::new(n1, n2))
}

/// Parse a `plan` offered-load axis spec `r:lo:hi:steps`.
fn parse_rho_axis(s: &str) -> Result<RhoAxis, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [r, lo, hi, steps] = parts.as_slice() else {
        return Err(format!("--rho-axis '{s}' must be r:lo:hi:steps"));
    };
    let class: usize = r.parse().map_err(|_| format!("bad class '{r}' in '{s}'"))?;
    let lo: f64 = lo.parse().map_err(|_| format!("bad lo '{lo}' in '{s}'"))?;
    let hi: f64 = hi.parse().map_err(|_| format!("bad hi '{hi}' in '{s}'"))?;
    let steps: usize = steps
        .parse()
        .map_err(|_| format!("bad steps '{steps}' in '{s}'"))?;
    if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo) {
        return Err(format!("--rho-axis '{s}' needs 0 < lo <= hi, finite"));
    }
    if steps == 0 {
        return Err("--rho-axis needs steps >= 1".into());
    }
    Ok(RhoAxis {
        class,
        lo,
        hi,
        steps,
    })
}

/// Parse a `plan` SLO spec `r:maxblock`.
fn parse_slo(s: &str) -> Result<Slo, String> {
    let Some((r, p)) = s.split_once(':') else {
        return Err(format!("--slo '{s}' must be r:maxblock"));
    };
    let class: usize = r.parse().map_err(|_| format!("bad class '{r}' in '{s}'"))?;
    let max_blocking: f64 = p.parse().map_err(|_| format!("bad bound '{p}' in '{s}'"))?;
    if !(0.0..=1.0).contains(&max_blocking) {
        return Err(format!("--slo bound must be in [0, 1], got {max_blocking}"));
    }
    Ok(Slo {
        class,
        max_blocking,
    })
}

fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    Ok(match s {
        "auto" => Algorithm::Auto,
        "alg1-f64" => Algorithm::Alg1F64,
        "alg1-scaled" => Algorithm::Alg1Scaled,
        "alg1-ext" => Algorithm::Alg1Ext,
        "alg2-mva" => Algorithm::Mva,
        "alg3-convolution" => Algorithm::Convolution,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

/// Parse an argument vector (without the program name). All failures are
/// `Err` strings — this function never panics, whatever the input.
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    let command = it.next().ok_or_else(usage)?.clone();
    if !["solve", "sim", "admit", "sweep", "serve", "fleet", "plan"].contains(&command.as_str()) {
        return Err(format!("unknown command '{command}'\n{}", usage()));
    }
    let mut n1 = None;
    let mut n2 = None;
    let mut algorithm = Algorithm::Auto;
    let mut resilient = false;
    let mut cross_check_tol = None;
    let mut threads = 0usize;
    let mut metrics = None;
    let mut classes = Vec::new();
    let mut duration = 100_000.0f64;
    let mut warmup = 1_000.0f64;
    let mut seed = 42u64;
    let mut replications = 0u64;
    let mut port_mtbf = 0.0f64;
    let mut port_mttr = 0.0f64;
    let mut fail_inputs = 0u32;
    let mut fail_outputs = 0u32;
    let mut policy = "cs".to_string();
    let mut trace = None;
    let mut replay_events = 1_000_000u64;
    let mut cross_check = false;
    let mut sweep_class = 0usize;
    let mut alpha_range = None;
    let mut data_dir = None;
    let mut serve_source: Option<ServeSource> = None;
    let mut queue_cap = 0usize;
    let mut snapshot_interval = 4096u64;
    let mut max_failures = 5u32;
    let mut reanchor_deadline_ms = None;
    let mut reprice_batch = None;
    let mut sync_every = 0u64;
    let mut idle_timeout_ms = 2_000u64;
    let mut kill_after = None;
    let mut models_path = None;
    let mut simd_mode = None;
    let mut geometries = Vec::new();
    let mut rho_axes = Vec::new();
    let mut slos = Vec::new();
    let mut plan_strategy = "exhaustive".to_string();
    let mut frontier_csv = None;
    let mut contour_csv = None;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--n" => {
                let v: u32 = value()?.parse().map_err(|e| format!("--n: {e}"))?;
                n1 = Some(v);
                n2 = Some(v);
            }
            "--n1" => n1 = Some(value()?.parse().map_err(|e| format!("--n1: {e}"))?),
            "--n2" => n2 = Some(value()?.parse().map_err(|e| format!("--n2: {e}"))?),
            "--algorithm" => algorithm = parse_algorithm(&value()?)?,
            "--resilient" => resilient = true,
            "--cross-check-tol" => {
                let v: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--cross-check-tol: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("--cross-check-tol must be finite and > 0, got {v}"));
                }
                cross_check_tol = Some(v);
            }
            "--threads" => {
                threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--metrics" => metrics = Some(value()?),
            "--class" => classes.push(parse_class(&value()?)?),
            "--duration" => {
                duration = value()?.parse().map_err(|e| format!("--duration: {e}"))?;
                if !(duration.is_finite() && duration > 0.0) {
                    return Err(format!("--duration must be finite and > 0, got {duration}"));
                }
            }
            "--warmup" => {
                warmup = value()?.parse().map_err(|e| format!("--warmup: {e}"))?;
                if !(warmup.is_finite() && warmup >= 0.0) {
                    return Err(format!("--warmup must be finite and >= 0, got {warmup}"));
                }
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--replications" => {
                replications = value()?
                    .parse()
                    .map_err(|e| format!("--replications: {e}"))?;
            }
            "--port-mtbf" => {
                port_mtbf = value()?.parse().map_err(|e| format!("--port-mtbf: {e}"))?;
                if port_mtbf.is_nan() || port_mtbf < 0.0 {
                    return Err(format!("--port-mtbf must be >= 0, got {port_mtbf}"));
                }
            }
            "--port-mttr" => {
                port_mttr = value()?.parse().map_err(|e| format!("--port-mttr: {e}"))?;
                if port_mttr.is_nan() || port_mttr < 0.0 {
                    return Err(format!("--port-mttr must be >= 0, got {port_mttr}"));
                }
            }
            "--fail-inputs" => {
                fail_inputs = value()?
                    .parse()
                    .map_err(|e| format!("--fail-inputs: {e}"))?
            }
            "--fail-outputs" => {
                fail_outputs = value()?
                    .parse()
                    .map_err(|e| format!("--fail-outputs: {e}"))?
            }
            "--policy" => {
                policy = value()?;
                // Validate eagerly so a typo is a parse-time usage error.
                PolicySpec::parse(&policy)?;
            }
            "--trace" => trace = Some(value()?),
            "--replay-events" => {
                replay_events = value()?
                    .parse()
                    .map_err(|e| format!("--replay-events: {e}"))?;
                if replay_events == 0 {
                    return Err("--replay-events must be > 0".into());
                }
            }
            "--cross-check" => cross_check = true,
            "--sweep-class" => {
                sweep_class = value()?
                    .parse()
                    .map_err(|e| format!("--sweep-class: {e}"))?
            }
            "--alpha" => alpha_range = Some(parse_alpha_range(&value()?)?),
            "--data-dir" => data_dir = Some(value()?),
            "--file" | "--tail" | "--socket" => {
                if serve_source.is_some() {
                    return Err("serve takes exactly one of --file, --tail, --socket".into());
                }
                let path = value()?;
                serve_source = Some(match flag.as_str() {
                    "--file" => ServeSource::File(path),
                    "--tail" => ServeSource::Tail(path),
                    _ => ServeSource::Socket(path),
                });
            }
            "--queue-cap" => {
                queue_cap = value()?.parse().map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--snapshot-interval" => {
                snapshot_interval = value()?
                    .parse()
                    .map_err(|e| format!("--snapshot-interval: {e}"))?;
            }
            "--max-failures" => {
                max_failures = value()?
                    .parse()
                    .map_err(|e| format!("--max-failures: {e}"))?;
                if max_failures == 0 {
                    return Err("--max-failures must be > 0".into());
                }
            }
            "--reanchor-deadline-ms" => {
                reanchor_deadline_ms = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--reanchor-deadline-ms: {e}"))?,
                );
            }
            "--reprice-batch" => {
                let v: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--reprice-batch: {e}"))?;
                if v == 0 {
                    return Err("--reprice-batch must be > 0".into());
                }
                reprice_batch = Some(v);
            }
            "--sync-every" => {
                sync_every = value()?.parse().map_err(|e| format!("--sync-every: {e}"))?;
            }
            "--idle-timeout-ms" => {
                idle_timeout_ms = value()?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
            }
            "--kill-after" => {
                let v: u64 = value()?.parse().map_err(|e| format!("--kill-after: {e}"))?;
                if v == 0 {
                    return Err("--kill-after must be > 0".into());
                }
                kill_after = Some(v);
            }
            "--models" => models_path = Some(value()?),
            "--geo" => geometries.push(parse_geo(&value()?)?),
            "--rho-axis" => rho_axes.push(parse_rho_axis(&value()?)?),
            "--slo" => slos.push(parse_slo(&value()?)?),
            "--strategy" => {
                let v = value()?;
                if !["exhaustive", "gradient"].contains(&v.as_str()) {
                    return Err(format!("--strategy must be exhaustive|gradient, got '{v}'"));
                }
                plan_strategy = v;
            }
            "--objective" => {
                let v = value()?;
                if !["w", "revenue"].contains(&v.as_str()) {
                    return Err(format!("--objective must be w (revenue), got '{v}'"));
                }
            }
            "--frontier-csv" => frontier_csv = Some(value()?),
            "--contour-csv" => contour_csv = Some(value()?),
            "--simd" => {
                let v = value()?;
                simd_mode = Some(
                    xbar_core::KernelMode::parse(&v)
                        .ok_or_else(|| format!("--simd must be scalar|strict|fast, got '{v}'"))?,
                );
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    // `fleet` takes its geometry and classes from the --models file, so
    // the per-command --n/--class contract does not apply.
    if command == "fleet" {
        if models_path.is_none() {
            return Err("fleet needs --models <path> (one model per line)".into());
        }
        if n1.is_some() || n2.is_some() || !classes.is_empty() {
            return Err("fleet reads models from --models; drop --n/--n1/--n2/--class".into());
        }
    }
    let n1 = match n1 {
        Some(v) => v,
        None if command == "fleet" => 0,
        None => return Err("missing --n or --n1".into()),
    };
    let n2 = match n2 {
        Some(v) => v,
        None if command == "fleet" => 0,
        None => return Err("missing --n or --n2".into()),
    };
    if classes.is_empty() && command != "fleet" {
        return Err("need at least one --class".into());
    }
    if command == "sweep" {
        if alpha_range.is_none() {
            return Err("sweep needs --alpha a0:a1:steps".into());
        }
        if sweep_class >= classes.len() {
            return Err(format!(
                "--sweep-class {sweep_class} out of range: only {} class(es)",
                classes.len()
            ));
        }
    }
    if command == "serve" {
        if data_dir.is_none() {
            return Err("serve needs --data-dir <dir> for its WAL + snapshots".into());
        }
        if serve_source.is_none() {
            return Err("serve needs an event source: --file, --tail, or --socket".into());
        }
    }
    if command == "plan" {
        for a in &rho_axes {
            if a.class >= classes.len() {
                return Err(format!(
                    "--rho-axis class {} out of range: only {} class(es)",
                    a.class,
                    classes.len()
                ));
            }
        }
        for s in &slos {
            if s.class >= classes.len() {
                return Err(format!(
                    "--slo class {} out of range: only {} class(es)",
                    s.class,
                    classes.len()
                ));
            }
        }
    }
    Ok(Args {
        command,
        n1,
        n2,
        algorithm,
        resilient,
        cross_check_tol,
        threads,
        metrics,
        classes,
        duration,
        warmup,
        seed,
        replications,
        port_mtbf,
        port_mttr,
        fail_inputs,
        fail_outputs,
        policy,
        trace,
        replay_events,
        cross_check,
        sweep_class,
        alpha_range,
        data_dir,
        serve_source,
        queue_cap,
        snapshot_interval,
        max_failures,
        reanchor_deadline_ms,
        reprice_batch,
        sync_every,
        idle_timeout_ms,
        kill_after,
        models_path,
        simd_mode,
        geometries,
        rho_axes,
        slos,
        plan_strategy,
        frontier_csv,
        contour_csv,
    })
}

/// Resolve a parsed class spec against the output-side dimension (tilde
/// rates aggregate over `C(N2, a)` port sets).
fn resolve_class(spec: &ClassSpec, n2: u32) -> TrafficClass {
    if spec.tilde {
        TildeClass {
            alpha_tilde: spec.alpha,
            beta_tilde: spec.beta,
            mu: spec.mu,
            bandwidth: spec.a,
            weight: spec.w,
        }
        .resolve(n2)
    } else {
        TrafficClass {
            alpha: spec.alpha,
            beta: spec.beta,
            mu: spec.mu,
            bandwidth: spec.a,
            weight: spec.w,
        }
    }
}

/// Build the analytic model from parsed args.
pub fn build_model(args: &Args) -> Result<Model, String> {
    let mut workload = Workload::new();
    for spec in &args.classes {
        workload = workload.with(resolve_class(spec, args.n2));
    }
    Model::new(Dims::new(args.n1, args.n2), workload).map_err(|e| e.to_string())
}

/// Parse a fleet model-spec file: one model per non-comment line,
/// `<N>|<N1>x<N2> <class-spec> [<class-spec> ...]` with the same class
/// specs as `--class`; `#` starts a comment.
pub fn parse_fleet_models(text: &str) -> Result<Vec<Model>, String> {
    let mut models = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |m: String| format!("models line {}: {m}", i + 1);
        let mut toks = line.split_whitespace();
        let dims_tok = toks.next().expect("non-empty line has a token");
        let (n1, n2) = match dims_tok.split_once('x') {
            Some((a, b)) => (
                a.parse()
                    .map_err(|e| at(format!("bad N1 '{a}' in '{dims_tok}': {e}")))?,
                b.parse()
                    .map_err(|e| at(format!("bad N2 '{b}' in '{dims_tok}': {e}")))?,
            ),
            None => {
                let n: u32 = dims_tok
                    .parse()
                    .map_err(|e| at(format!("bad dims '{dims_tok}' (want N or N1xN2): {e}")))?;
                (n, n)
            }
        };
        let mut workload = Workload::new();
        let mut any = false;
        for tok in toks {
            workload = workload.with(resolve_class(&parse_class(tok).map_err(at)?, n2));
            any = true;
        }
        if !any {
            return Err(at("needs at least one class spec".into()));
        }
        models.push(Model::new(Dims::new(n1, n2), workload).map_err(|e| at(e.to_string()))?);
    }
    if models.is_empty() {
        return Err("models file has no model lines".into());
    }
    Ok(models)
}

fn print_solution_table(args: &Args, model: &Model, sol: &xbar_core::Solution) {
    println!(
        "solved {}x{} with {} classes (algorithm: {})",
        args.n1,
        args.n2,
        model.num_classes(),
        sol.algorithm()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "class", "blocking", "B_r", "E_r", "throughput", "acceptance"
    );
    for r in 0..model.num_classes() {
        println!(
            "{r:>6} {:>12.6} {:>12.6} {:>12.4} {:>12.4} {:>12.6}",
            sol.blocking(r),
            sol.nonblocking(r),
            sol.concurrency(r),
            sol.throughput(r),
            sol.call_acceptance(r),
        );
    }
    println!(
        "revenue W = {:.6}   total throughput = {:.4}",
        sol.revenue(),
        sol.total_throughput()
    );
    for r in 0..model.num_classes() {
        println!(
            "class {r}: shadow cost = {:.6}, dW/drho = {:+.4}",
            sol.shadow_cost(r),
            sol.revenue_gradient_rho(r)
        );
    }
}

/// Execute the `solve` command.
pub fn run_solve(args: &Args) -> Result<(), CliError> {
    let model = build_model(args).map_err(CliError::Usage)?;
    if args.resilient {
        let mut config = ResilientConfig::new();
        if let Some(tol) = args.cross_check_tol {
            config = config.with_cross_check_tol(tol);
        }
        let resilient = solve_resilient(&model, &config).map_err(|e| match &e {
            SolveError::CrossCheckFailed(_) => CliError::CrossCheck(e.to_string()),
            SolveError::Model(_) => CliError::Usage(e.to_string()),
            _ => CliError::Solve(e.to_string()),
        })?;
        println!("pipeline: {}", resilient.report.summary());
        print_solution_table(args, &model, &resilient.solution);
    } else {
        let sol = solve(&model, args.algorithm).map_err(|e| match &e {
            SolveError::Model(_) => CliError::Usage(e.to_string()),
            _ => CliError::Solve(e.to_string()),
        })?;
        print_solution_table(args, &model, &sol);
    }
    Ok(())
}

/// Execute the `sweep` command: one [`SweepSolver`] precompute, then one
/// `O(N)` recombination per grid point of class `r`'s arrival intercept
/// `α` (analytically continued like [`Model::with_rho`], so smooth
/// Bernoulli grids work too).
pub fn run_sweep(args: &Args) -> Result<(), CliError> {
    let model = build_model(args).map_err(CliError::Usage)?;
    let r = args.sweep_class;
    let (a0, a1, steps) = args.alpha_range.expect("parse_args requires --alpha");
    let sweep = SweepSolver::new(&model, args.algorithm).map_err(|e| match &e {
        SolveError::Model(_) => CliError::Usage(e.to_string()),
        _ => CliError::Solve(e.to_string()),
    })?;
    let mu = model.workload().classes()[r].mu;
    println!(
        "sweeping class {r} alpha over [{a0}, {a1}] in {steps} step(s) on {}x{} \
         (backend: {})",
        args.n1,
        args.n2,
        sweep.algorithm()
    );
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>12}",
        "alpha", "blocking", "B_r", "revenue", "throughput"
    );
    for i in 0..steps {
        let alpha = if steps == 1 {
            a0
        } else {
            a0 + (a1 - a0) * i as f64 / (steps - 1) as f64
        };
        let point = sweep
            .solve_with_rho(r, alpha / mu)
            .map_err(|e| CliError::Solve(e.to_string()))?;
        println!(
            "{alpha:>14.8} {:>12.6} {:>12.6} {:>12.6} {:>12.4}",
            point.blocking(r),
            point.nonblocking(r),
            point.revenue(),
            point.total_throughput(),
        );
    }
    Ok(())
}

/// Render frontier rows as CSV (one `;`-joined cell for the `ρ` vector,
/// so the row stays one CSV record per design).
fn frontier_to_csv(rows: &[xbar_plan::FrontierRow]) -> String {
    let mut out = String::from("index,n1,n2,rho,objective,worst_blocking,optimal\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.9},{:.9},{}\n",
            plan_index_cell(r.index),
            r.n1,
            r.n2,
            plan_rho_cell(&r.rho),
            r.objective,
            r.worst_blocking,
            r.optimal
        ));
    }
    out
}

/// Render contour rows as CSV.
fn contour_to_csv(rows: &[xbar_plan::ContourRow]) -> String {
    let mut out = String::from("index,n1,n2,rho,objective,worst_blocking,feasible\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.9},{:.9},{}\n",
            plan_index_cell(r.index),
            r.n1,
            r.n2,
            plan_rho_cell(&r.rho),
            r.objective,
            r.worst_blocking,
            r.feasible
        ));
    }
    out
}

fn plan_index_cell(index: u64) -> String {
    if index == xbar_plan::OFF_GRID {
        "-".to_string()
    } else {
        index.to_string()
    }
}

fn plan_rho_cell(rho: &[f64]) -> String {
    rho.iter()
        .map(|x| format!("{x:.6}"))
        .collect::<Vec<_>>()
        .join(";")
}

/// Execute the `plan` command: search the design space for the
/// revenue-maximal SLO-feasible design, print the multi-analyzer report,
/// and optionally dump the Pareto frontier / contour CSVs. An SLO set no
/// evaluated design can satisfy exits 8 ([`CliError::Infeasible`]), with
/// the least-violating candidate in the message — distinct from a solver
/// failure (exit 3).
pub fn run_plan(args: &Args) -> Result<(), CliError> {
    let model = build_model(args).map_err(CliError::Usage)?;
    let mut space = DesignSpace::new(model);
    for g in &args.geometries {
        space = space.with_geometry(*g);
    }
    for a in &args.rho_axes {
        space = space.with_axis(*a);
    }
    for s in &args.slos {
        space = space.with_slo(*s);
    }
    let strategy = match args.plan_strategy.as_str() {
        "gradient" => xbar_plan::Strategy::GradientAscent {
            max_iters: 60,
            step0: 0.25,
            starts: Vec::new(),
        },
        // Pruned and fleet-warmed: scanline tails past the first SLO
        // violation are skipped, shared precomputes build over the worker
        // pool. Bit-identical to the serial path (the crate's proptests
        // hold the exhaustive strategy to that).
        _ => xbar_plan::Strategy::Exhaustive {
            prune: true,
            batch: true,
        },
    };
    let cfg = PlanConfig {
        algorithm: args.algorithm,
        strategy,
        ..PlanConfig::default()
    };
    let report = xbar_plan::plan(&space, &cfg).map_err(|e| match &e {
        PlanError::Space(_) => CliError::Usage(e.to_string()),
        PlanError::Infeasible { closest, .. } => {
            // Surface the least-violating candidate so the operator can
            // see how far the requirement missed.
            let detail = closest
                .as_ref()
                .map(|c| {
                    format!(
                        "; closest: {}x{} rho {} (W = {:.6}, blocking {})",
                        c.candidate.geometry.n1,
                        c.candidate.geometry.n2,
                        plan_rho_cell(&c.candidate.rho),
                        c.objective,
                        plan_rho_cell(&c.call_blocking),
                    )
                })
                .unwrap_or_default();
            CliError::Infeasible(format!("{e}{detail}"))
        }
        PlanError::Solve(_) => CliError::Solve(e.to_string()),
    })?;
    let text = xbar_plan::render_report(&space, &cfg, &report)
        .map_err(|e| CliError::Solve(e.to_string()))?;
    print!("{text}");
    if let Some(path) = &args.frontier_csv {
        let csv = frontier_to_csv(&xbar_plan::frontier(&space, &report));
        std::fs::write(path, csv)
            .map_err(|e| CliError::Usage(format!("cannot write '{path}': {e}")))?;
    }
    if let Some(path) = &args.contour_csv {
        let csv = contour_to_csv(&xbar_plan::contour(&space, &report));
        std::fs::write(path, csv)
            .map_err(|e| CliError::Usage(format!("cannot write '{path}': {e}")))?;
    }
    Ok(())
}

/// Execute the `fleet` command: batch-solve every model in the spec
/// file through [`xbar_core::solve_fleet`] — duplicates dedupe to one
/// solve, distinct models shard over the persistent worker pool — and
/// print one summary row per model. Any failed member exits 3 after the
/// full table is printed.
pub fn run_fleet(args: &Args) -> Result<(), CliError> {
    let path = args
        .models_path
        .as_deref()
        .expect("parse_args requires --models");
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read models file '{path}': {e}")))?;
    let models = parse_fleet_models(&text).map_err(CliError::Usage)?;
    if let Some(mode) = args.simd_mode {
        xbar_core::simd::set_kernel_mode(mode);
    }
    let results = xbar_core::solve_fleet(&models, args.algorithm);
    println!(
        "fleet of {} model(s) (algorithm: {}, kernels: {})",
        models.len(),
        args.algorithm,
        xbar_core::simd::kernel_mode()
    );
    println!(
        "{:>5} {:>9} {:>7} {:>12} {:>12} {:>12}",
        "model", "dims", "classes", "blocking", "revenue", "throughput"
    );
    let mut failed = 0usize;
    for (i, (model, res)) in models.iter().zip(&results).enumerate() {
        let dims = format!("{}x{}", model.dims().n1, model.dims().n2);
        match res {
            Ok(sol) => println!(
                "{i:>5} {dims:>9} {:>7} {:>12.6} {:>12.6} {:>12.4}",
                model.num_classes(),
                sol.blocking(0),
                sol.revenue(),
                sol.total_throughput(),
            ),
            Err(e) => {
                failed += 1;
                println!("{i:>5} {dims:>9} {:>7} error: {e}", model.num_classes());
            }
        }
    }
    if failed > 0 {
        return Err(CliError::Solve(format!(
            "{failed} of {} fleet member(s) failed",
            models.len()
        )));
    }
    Ok(())
}

/// Execute the `sim` command.
pub fn run_sim(args: &Args) -> Result<(), CliError> {
    let model = build_model(args).map_err(CliError::Usage)?;
    let faults = FaultConfig::from_mtbf_mttr(
        if args.port_mtbf > 0.0 {
            args.port_mtbf
        } else {
            f64::INFINITY
        },
        if args.port_mttr > 0.0 {
            args.port_mttr
        } else {
            f64::INFINITY
        },
    )
    .with_static_failures(args.fail_inputs, args.fail_outputs);
    let mut cfg = SimConfig::new(args.n1, args.n2).with_faults(faults);
    for class in model.workload().classes() {
        cfg = cfg.with_exp_class(class.clone());
    }
    if args.replications > 0 {
        return run_sim_replicated(args, cfg);
    }
    let mut sim =
        CrossbarSim::try_new(cfg, args.seed).map_err(|e| CliError::SimConfig(e.to_string()))?;
    let rep = sim.run(RunConfig {
        warmup: args.warmup,
        duration: args.duration,
        batches: 20,
    });
    println!(
        "simulated {}x{} for t = {} ({} events, seed {})",
        args.n1, args.n2, args.duration, rep.events, args.seed
    );
    println!(
        "{:>6} {:>10} {:>10} {:>22} {:>22}",
        "class", "offered", "blocked", "blocking (95% CI)", "availability (95% CI)"
    );
    for (r, c) in rep.classes.iter().enumerate() {
        println!(
            "{r:>6} {:>10} {:>10} {:>14.6} ±{:.6} {:>14.6} ±{:.6}",
            c.offered,
            c.blocked,
            c.blocking.mean,
            c.blocking.half_width,
            c.availability.mean,
            c.availability.half_width,
        );
    }
    if let Some(faults) = &rep.faults {
        println!(
            "faults: {} failures, {} repairs, {} circuits torn down, {} requests fault-blocked",
            faults.failures, faults.repairs, faults.torn_down, faults.fault_blocked
        );
        println!(
            "mean failed ports: {:.3} inputs, {:.3} outputs",
            faults.mean_failed_inputs, faults.mean_failed_outputs
        );
        for (r, c) in rep.classes.iter().enumerate() {
            println!(
                "class {r}: viable blocking = {:.6} ±{:.6} (degraded-switch congestion only)",
                c.viable_blocking.mean, c.viable_blocking.half_width
            );
        }
    }
    println!("revenue rate = {:.6}", rep.revenue);
    Ok(())
}

/// The `sim --replications <n>` path: fan `n` seed-derived replications
/// over the worker pool (the PR 10 harness) and print merged
/// across-replication statistics. Every number printed here is bitwise
/// identical for any `--threads`/`XBAR_THREADS` — CI diffs the t=1 and
/// t=4 outputs byte for byte.
fn run_sim_replicated(args: &Args, cfg: SimConfig) -> Result<(), CliError> {
    let run = RunConfig {
        warmup: args.warmup,
        duration: args.duration,
        batches: 20,
    };
    let rep_cfg = RepConfig {
        replications: args.replications,
        master_seed: args.seed,
        confidence: Confidence::P99,
    };
    let merged = run_sim_replications(&cfg, &run, &rep_cfg)
        .map_err(|e| CliError::SimConfig(e.to_string()))?;
    println!(
        "simulated {}x{} for t = {} x {} replications ({} events, master seed {})",
        args.n1, args.n2, args.duration, merged.replications, merged.events, args.seed
    );
    println!(
        "{:>6} {:>10} {:>10} {:>22} {:>22}",
        "class", "offered", "blocked", "blocking (99% CI)", "availability (99% CI)"
    );
    for (r, c) in merged.classes.iter().enumerate() {
        println!(
            "{r:>6} {:>10} {:>10} {:>14.6} ±{:.6} {:>14.6} ±{:.6}",
            c.offered,
            c.blocked,
            c.blocking.mean,
            c.blocking.half_width,
            c.availability.mean,
            c.availability.half_width,
        );
    }
    println!(
        "revenue rate = {:.6} ±{:.6}",
        merged.revenue.mean, merged.revenue.half_width
    );
    Ok(())
}

fn admission_err(e: AdmissionError) -> CliError {
    match e {
        AdmissionError::Solve(_) => CliError::Solve(e.to_string()),
        _ => CliError::Usage(e.to_string()),
    }
}

/// Replay a trace file of `a <class>` / `d <class>` lines (with `#`
/// comments) through a fresh engine; errors carry the 1-based line number.
///
/// The file is read as raw bytes and decoded per line, so a stray
/// non-UTF-8 byte is a usage error naming the offending line — not a
/// whole-file refusal and never a panic. An empty file is a valid trace
/// of zero events, and a partial final line (no trailing newline) is
/// replayed like any other.
fn replay_trace(model: &Model, cfg: EngineConfig, path: &str) -> Result<AdmissionEngine, CliError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::Usage(format!("cannot read trace '{path}': {e}")))?;
    let mut engine = AdmissionEngine::new(model, cfg).map_err(admission_err)?;
    for (i, raw) in bytes.split(|&b| b == b'\n').enumerate() {
        let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
        let raw = std::str::from_utf8(raw).map_err(|e| {
            CliError::Usage(format!("{path}:{}: invalid UTF-8 in trace: {e}", i + 1))
        })?;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |m: String| CliError::Usage(format!("{path}:{}: {m}", i + 1));
        let mut parts = line.split_whitespace();
        let op = parts.next().unwrap_or("");
        let class: usize = parts
            .next()
            .ok_or_else(|| at(format!("expected 'a <class>' or 'd <class>', got '{line}'")))?
            .parse()
            .map_err(|e| at(format!("bad class index: {e}")))?;
        if parts.next().is_some() {
            return Err(at(format!("trailing tokens in '{line}'")));
        }
        let step = match op {
            "a" => engine.offer(class).map(|_| ()),
            "d" => engine.depart(class),
            other => return Err(at(format!("unknown op '{other}' (expected 'a' or 'd')"))),
        };
        step.map(|_| ()).map_err(|e| at(e.to_string()))?;
    }
    Ok(engine)
}

/// Execute the `admit` command: replay a trace file or a synthetic BPP
/// event stream through the online admission engine.
pub fn run_admit(args: &Args) -> Result<(), CliError> {
    let model = build_model(args).map_err(CliError::Usage)?;
    let policy = PolicySpec::parse(&args.policy).map_err(CliError::Usage)?;
    if args.cross_check && policy != PolicySpec::CompleteSharing {
        return Err(CliError::Usage(
            "--cross-check compares against the paper's complete-sharing analytics; \
             it requires --policy cs"
                .into(),
        ));
    }
    let engine_cfg = EngineConfig {
        policy: policy.clone(),
        algorithm: args.algorithm,
        reprice_batch: args.reprice_batch,
        ..EngineConfig::default()
    };

    if let Some(path) = &args.trace {
        let engine = replay_trace(&model, engine_cfg, path)?;
        let stats = engine.stats();
        println!(
            "replayed trace '{path}' on {}x{} (policy {policy}): {} events, {} re-anchors",
            args.n1, args.n2, stats.events, stats.re_anchors
        );
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12}",
            "class", "offered", "admitted", "deny(cap)", "deny(policy)"
        );
        for (r, c) in stats.per_class.iter().enumerate() {
            println!(
                "{r:>6} {:>10} {:>10} {:>12} {:>12}",
                c.offered, c.admitted, c.denied_capacity, c.denied_policy
            );
        }
        println!("final occupancy k = {:?}", engine.state());
        engine.flush_obs();
        return Ok(());
    }

    let rep = replay(
        &model,
        &ReplayConfig {
            events: args.replay_events,
            seed: args.seed,
            batches: 20,
            engine: engine_cfg,
        },
    )
    .map_err(admission_err)?;
    println!(
        "replayed {} synthetic events on {}x{} (policy {policy}, seed {}): \
         {} arrivals, {} departures, {} re-anchors",
        rep.events, args.n1, args.n2, args.seed, rep.arrivals, rep.departures, rep.re_anchors
    );
    if let Some(batch) = args.reprice_batch {
        println!(
            "repricing: every {batch} events, {} pass(es), {} threshold update(s)",
            rep.reprice_batches, rep.reprice_updates
        );
    }
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>22} {:>10}",
        "class",
        "offered",
        "admitted",
        "deny(cap)",
        "deny(policy)",
        "acceptance (99% CI)",
        "analytic"
    );
    for (r, c) in rep.classes.iter().enumerate() {
        println!(
            "{r:>6} {:>10} {:>10} {:>12} {:>12} {:>14.6} ±{:.6} {:>10.6}",
            c.offered,
            c.admitted,
            c.denied_capacity,
            c.denied_policy,
            c.acceptance.mean,
            c.acceptance.half_width,
            c.analytic_acceptance,
        );
    }
    if args.cross_check {
        for (r, c) in rep.classes.iter().enumerate() {
            if !c.acceptance.covers(c.analytic_acceptance) {
                return Err(CliError::CrossCheck(format!(
                    "replay acceptance for class {r} ({:.6} ± {:.6}) excludes the analytic \
                     value {:.6}",
                    c.acceptance.mean, c.acceptance.half_width, c.analytic_acceptance
                )));
            }
        }
        println!("cross-check: replay acceptance covers the analytic value for every class");
    }
    Ok(())
}

fn serve_err(e: xbar_serve::ServeError) -> CliError {
    match &e {
        xbar_serve::ServeError::Config(_) => CliError::Usage(e.to_string()),
        xbar_serve::ServeError::Admission(_) => CliError::Solve(e.to_string()),
        _ => CliError::Metrics(e.to_string()),
    }
}

/// Execute the `serve` command: run the fault-tolerant multi-tenant
/// admission daemon over a file, tailed file, or unix-socket event
/// stream, with durable WAL + snapshot state under `--data-dir`.
///
/// The process exits 0 on a clean run and 7 ([`CliError::Quarantine`])
/// when one or more tenants ended the run quarantined: the fleet kept
/// serving, but an operator needs to look at the quarantined WALs.
pub fn run_serve(args: &Args) -> Result<(), CliError> {
    let model = build_model(args).map_err(CliError::Usage)?;
    let policy = PolicySpec::parse(&args.policy).map_err(CliError::Usage)?;
    let data_dir = args
        .data_dir
        .as_deref()
        .ok_or_else(|| CliError::Usage("serve needs --data-dir".into()))?;
    let source = match args
        .serve_source
        .as_ref()
        .ok_or_else(|| CliError::Usage("serve needs --file, --tail, or --socket".into()))?
    {
        ServeSource::File(p) => xbar_serve::Source::File(p.into()),
        ServeSource::Tail(p) => xbar_serve::Source::Tail(p.into()),
        ServeSource::Socket(p) => xbar_serve::Source::Socket(p.into()),
    };
    let cfg = xbar_serve::DaemonConfig {
        tenant: xbar_serve::TenantConfig {
            policy,
            algorithm: args.algorithm,
            snapshot_interval: args.snapshot_interval,
            max_failures: args.max_failures,
            reanchor_deadline: args.reanchor_deadline_ms.map(Duration::from_millis),
            reprice_batch: args.reprice_batch,
            sync_every: args.sync_every,
            ..xbar_serve::TenantConfig::default()
        },
        queue_cap: args.queue_cap,
        kill_after: args.kill_after,
        sleep_on_backoff: true,
        ..xbar_serve::DaemonConfig::default()
    };
    let (mut daemon, reports) =
        xbar_serve::Daemon::open(std::path::Path::new(data_dir), &model, cfg).map_err(serve_err)?;
    for (name, report) in &reports {
        println!(
            "recovered tenant '{name}': snapshot={} replayed={} wal_damaged={} durable_seq={}",
            report.snapshot_used, report.replayed, report.wal_damaged, report.durable_seq
        );
    }
    let run = xbar_serve::run_source(
        &mut daemon,
        &source,
        Duration::from_millis(args.idle_timeout_ms),
    )
    .map_err(serve_err)?;
    let acc = daemon.accounting();
    let counters = daemon.serve_counters();
    println!(
        "served {} line(s), {} event(s) applied{} ({} tenant(s))",
        run.lines,
        run.applied,
        if run.stopped { " [stopped]" } else { "" },
        daemon.tenants().count()
    );
    println!(
        "offers {} = admitted {} + denied(cap) {} + denied(policy) {} + shed {}; \
         departures {}, rejected {}, duplicates {}",
        acc.offers,
        acc.admitted,
        acc.denied_capacity,
        acc.denied_policy,
        acc.shed,
        acc.departures,
        acc.rejected,
        daemon.counters().duplicates,
    );
    if counters.restarts > 0 || counters.stale_reanchors > 0 {
        println!(
            "supervision: {} restart(s), {} stale re-anchor(s)",
            counters.restarts, counters.stale_reanchors
        );
    }
    daemon.flush_obs();
    let quarantined = daemon.quarantined_tenants();
    if quarantined > 0 {
        let names: Vec<&str> = daemon
            .tenants()
            .filter(|(_, t)| t.quarantined())
            .map(|(n, _)| n.as_str())
            .collect();
        return Err(CliError::Quarantine(format!(
            "{quarantined} tenant(s) quarantined after repeated failures: {}",
            names.join(", ")
        )));
    }
    Ok(())
}

/// Check the cross-cutting obs counter invariants a healthy run must
/// satisfy: the simulator's offer accounting
/// (`offers = admitted + capacity-blocked + fault-blocked`) and the
/// admission engine's decision split
/// (`offers = admitted + capacity-denied + policy-denied`), each checked
/// only when the corresponding run actually happened.
pub fn verify_metrics_invariants(snap: &xbar_obs::Snapshot) -> Result<(), CliError> {
    if let Some(offers) = snap.counter("sim.offers") {
        let admitted = snap.counter("sim.admitted").unwrap_or(0);
        let capacity = snap.counter("sim.blocked.capacity").unwrap_or(0);
        let fault = snap.counter("sim.blocked.fault").unwrap_or(0);
        if offers != admitted + capacity + fault {
            return Err(CliError::Metrics(format!(
                "sim accounting invariant broken: offers ({offers}) != admitted ({admitted}) \
                 + capacity-blocked ({capacity}) + fault-blocked ({fault})"
            )));
        }
    }
    if let Some(offers) = snap.counter("admission.offers") {
        let admitted = snap.counter("admission.admitted").unwrap_or(0);
        let capacity = snap.counter("admission.denied.capacity").unwrap_or(0);
        let policy = snap.counter("admission.denied.policy").unwrap_or(0);
        if offers != admitted + capacity + policy {
            return Err(CliError::Metrics(format!(
                "admission accounting invariant broken: offers ({offers}) != admitted \
                 ({admitted}) + capacity-denied ({capacity}) + policy-denied ({policy})"
            )));
        }
    }
    if let Some(offers) = snap.counter("serve.offers") {
        let admitted = snap.counter("serve.admitted").unwrap_or(0);
        let capacity = snap.counter("serve.denied.capacity").unwrap_or(0);
        let policy = snap.counter("serve.denied.policy").unwrap_or(0);
        let shed = snap.counter("serve.shed.total").unwrap_or(0);
        if offers != admitted + capacity + policy + shed {
            return Err(CliError::Metrics(format!(
                "serve accounting invariant broken: offers ({offers}) != admitted \
                 ({admitted}) + capacity-denied ({capacity}) + policy-denied ({policy}) \
                 + shed ({shed})"
            )));
        }
    }
    if let Some(batches) = snap.counter("admission.reprice.batches") {
        let updates = snap.counter("admission.reprice.updates").unwrap_or(0);
        if updates > batches {
            return Err(CliError::Metrics(format!(
                "repricing invariant broken: updates ({updates}) > batches ({batches}) — \
                 a threshold can only change in a repricing pass"
            )));
        }
    }
    if let Some(candidates) = snap.counter("plan.candidates") {
        let evaluated = snap.counter("plan.evaluated").unwrap_or(0);
        let pruned = snap.counter("plan.pruned").unwrap_or(0);
        if candidates != evaluated + pruned {
            return Err(CliError::Metrics(format!(
                "plan accounting invariant broken: candidates ({candidates}) != evaluated \
                 ({evaluated}) + pruned ({pruned})"
            )));
        }
        let feasible = snap.counter("plan.feasible").unwrap_or(0);
        let infeasible = snap.counter("plan.infeasible").unwrap_or(0);
        if evaluated != feasible + infeasible {
            return Err(CliError::Metrics(format!(
                "plan SLO-verdict invariant broken: evaluated ({evaluated}) != feasible \
                 ({feasible}) + infeasible ({infeasible})"
            )));
        }
    }
    if let Some(batched) = snap.counter("serve.reanchor.batched") {
        let batches = snap.counter("serve.reanchor.batches").unwrap_or(0);
        if batches > batched {
            return Err(CliError::Metrics(format!(
                "serve re-anchor invariant broken: batches ({batches}) > batched \
                 re-anchors ({batched}) — every batch must complete at least one"
            )));
        }
    }
    Ok(())
}

/// Snapshot the global obs registry, verify invariants, and emit: `-`
/// prints the human-readable table, anything else writes the JSON snapshot.
fn emit_metrics(target: &str) -> Result<(), CliError> {
    let snap = xbar_obs::global().snapshot();
    verify_metrics_invariants(&snap)?;
    if target == "-" {
        print!("{}", snap.to_text());
    } else {
        std::fs::write(target, snap.to_json())
            .map_err(|e| CliError::Metrics(format!("cannot write '{target}': {e}")))?;
    }
    Ok(())
}

/// Parse and execute; the returned error carries its exit code.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let args = parse_args(argv).map_err(CliError::Usage)?;
    // 0 = auto (available_parallelism / XBAR_THREADS); the wavefront solver
    // and solve_batch read this process-wide setting.
    xbar_core::parallel::set_threads(args.threads);
    if args.metrics.is_some() {
        xbar_obs::set_global_enabled(true);
    }
    let result = match args.command.as_str() {
        "solve" => run_solve(&args),
        "sim" => run_sim(&args),
        "admit" => run_admit(&args),
        "sweep" => run_sweep(&args),
        "serve" => run_serve(&args),
        "fleet" => run_fleet(&args),
        "plan" => run_plan(&args),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    if let Some(target) = &args.metrics {
        // A quarantine exit is a *degraded* run, not an aborted one: the
        // daemon finished serving and its counters are the evidence an
        // operator needs, so the snapshot is still emitted (and its
        // invariants still enforced — a broken ledger outranks a
        // quarantine flag).
        // Likewise an infeasible plan: the search *completed* — its
        // counters (how many candidates, how close the nearest miss) are
        // exactly what the operator wants next.
        match &result {
            Ok(()) | Err(CliError::Quarantine(_)) | Err(CliError::Infeasible(_)) => {
                emit_metrics(target)?
            }
            Err(_) => {}
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_poisson_class() {
        let c = parse_class("poisson:rho=0.5,mu=2,a=2,w=0.3").unwrap();
        assert_eq!(c.alpha, 1.0); // alpha = rho·mu
        assert_eq!(c.beta, 0.0);
        assert_eq!(c.a, 2);
        assert_eq!(c.w, 0.3);
        assert!(!c.tilde);
    }

    #[test]
    fn parses_bpp_class_with_tilde() {
        let c = parse_class("bpp:alpha=0.0012,beta=0.0012,tilde,w=0.0001").unwrap();
        assert_eq!(c.alpha, 0.0012);
        assert_eq!(c.beta, 0.0012);
        assert!(c.tilde);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_class("nope:rho=1").is_err());
        assert!(parse_class("poisson:").is_err());
        assert!(parse_class("poisson:rho=x").is_err());
        assert!(parse_class("poisson:rho=1,beta=2").is_err());
        assert!(parse_class("bpp:beta=0.1").is_err());
        assert!(parse_class("poisson:rho=1,bogus=2").is_err());
        assert!(parse_class("poisson").is_err());
        assert!(parse_class("poisson:rho=1,a=1.5").is_err());
        assert!(parse_class("poisson:rho=1,a=-2").is_err());
        assert!(parse_class("poisson:rho=1,a=inf").is_err());
    }

    #[test]
    fn parses_full_solve_command() {
        let a = parse_args(&argv(
            "solve --n 16 --algorithm alg2-mva --class poisson:rho=0.01",
        ))
        .unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!((a.n1, a.n2), (16, 16));
        assert_eq!(a.algorithm, Algorithm::Mva);
        assert_eq!(a.classes.len(), 1);
        assert!(!a.resilient);
    }

    #[test]
    fn parses_resilient_flags() {
        let a = parse_args(&argv(
            "solve --n 200 --resilient --cross-check-tol 1e-9 --class poisson:rho=1e-5",
        ))
        .unwrap();
        assert!(a.resilient);
        assert_eq!(a.cross_check_tol, Some(1e-9));
    }

    #[test]
    fn parses_threads_flag() {
        let a = parse_args(&argv("solve --n 16 --threads 4 --class poisson:rho=0.01")).unwrap();
        assert_eq!(a.threads, 4);
        // Default is 0 = auto.
        let d = parse_args(&argv("solve --n 16 --class poisson:rho=0.01")).unwrap();
        assert_eq!(d.threads, 0);
        // Malformed values are usage errors, not panics.
        assert!(parse_args(&argv("solve --n 16 --threads x --class poisson:rho=0.01")).is_err());
        assert!(parse_args(&argv("solve --n 16 --threads --class poisson:rho=0.01")).is_err());
    }

    #[test]
    fn parses_fault_flags() {
        let a = parse_args(&argv(
            "sim --n 8 --class poisson:rho=0.1 --port-mtbf 100 --port-mttr 10 \
             --fail-inputs 2 --fail-outputs 1",
        ))
        .unwrap();
        assert_eq!(a.port_mtbf, 100.0);
        assert_eq!(a.port_mttr, 10.0);
        assert_eq!((a.fail_inputs, a.fail_outputs), (2, 1));
    }

    #[test]
    fn parses_rectangular_sim_command() {
        let a = parse_args(&argv(
            "sim --n1 8 --n2 12 --class poisson:rho=0.01 --duration 500 --warmup 10 --seed 9",
        ))
        .unwrap();
        assert_eq!((a.n1, a.n2), (8, 12));
        assert_eq!(a.duration, 500.0);
        assert_eq!(a.seed, 9);
        // Default: the classic single-run path.
        assert_eq!(a.replications, 0);
    }

    #[test]
    fn parses_and_runs_replicated_sim() {
        let a = parse_args(&argv(
            "sim --n 4 --class poisson:rho=0.1 --duration 200 --warmup 10 \
             --seed 5 --replications 3",
        ))
        .unwrap();
        assert_eq!(a.replications, 3);
        assert!(run_sim(&a).is_ok());
        assert!(parse_args(&argv("sim --n 4 --class poisson:rho=1 --replications -1")).is_err());
        assert!(parse_args(&argv("sim --n 4 --class poisson:rho=1 --replications")).is_err());
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(parse_args(&argv("bogus --n 4")).is_err());
        assert!(parse_args(&argv("solve --n 4")).is_err()); // no class
        assert!(parse_args(&argv("solve --class poisson:rho=1")).is_err()); // no size
        assert!(parse_args(&argv("solve --n 4 --algorithm nope --class poisson:rho=1")).is_err());
        assert!(parse_args(&argv("solve --n")).is_err());
        assert!(parse_args(&argv("sim --n 4 --class poisson:rho=1 --duration 0")).is_err());
        assert!(parse_args(&argv("sim --n 4 --class poisson:rho=1 --duration nan")).is_err());
        assert!(parse_args(&argv("sim --n 4 --class poisson:rho=1 --warmup -5")).is_err());
        assert!(parse_args(&argv("sim --n 4 --class poisson:rho=1 --port-mtbf -1")).is_err());
        assert!(parse_args(&argv(
            "solve --n 4 --cross-check-tol 0 --class poisson:rho=1"
        ))
        .is_err());
    }

    #[test]
    fn solve_round_trip_matches_library() {
        let a = parse_args(&argv(
            "solve --n 8 --class poisson:rho=0.0024,tilde --class bpp:alpha=0.0012,beta=0.0012,tilde",
        ))
        .unwrap();
        let model = build_model(&a).unwrap();
        // Tilde resolution happened: per-set rho = 0.0024/8.
        let c0 = &model.workload().classes()[0];
        assert!((c0.alpha - 0.0003).abs() < 1e-12);
        let sol = solve(&model, Algorithm::Auto).unwrap();
        assert!(sol.blocking(0) > 0.0 && sol.blocking(0) < 0.01);
    }

    #[test]
    fn resilient_solve_runs_end_to_end() {
        // N = 200 forces the f64 backend to underflow; the pipeline must
        // escalate and still succeed (exit path: Ok).
        let a = parse_args(&argv(
            "solve --n 200 --resilient --cross-check-tol 1e-9 --class poisson:rho=1e-5",
        ))
        .unwrap();
        assert!(run_solve(&a).is_ok());
    }

    #[test]
    fn sim_config_errors_map_to_exit_5() {
        let a = parse_args(&argv(
            "sim --n 4 --class poisson:rho=0.1 --fail-inputs 9 --duration 10",
        ))
        .unwrap();
        let err = run_sim(&a).unwrap_err();
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn usage_errors_map_to_exit_2() {
        let err = run(&argv("solve --n 4")).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn parses_metrics_flag() {
        let a = parse_args(&argv(
            "sim --n 4 --class poisson:rho=0.1 --metrics out.json",
        ))
        .unwrap();
        assert_eq!(a.metrics.as_deref(), Some("out.json"));
        let a = parse_args(&argv("solve --n 4 --class poisson:rho=0.1 --metrics -")).unwrap();
        assert_eq!(a.metrics.as_deref(), Some("-"));
        // Value required.
        assert!(parse_args(&argv("solve --n 4 --class poisson:rho=0.1 --metrics")).is_err());
    }

    #[test]
    fn parses_admit_command() {
        let a = parse_args(&argv(
            "admit --n 8 --class poisson:rho=0.1 --policy trunk:2 \
             --replay-events 5000 --seed 3 --cross-check",
        ))
        .unwrap();
        assert_eq!(a.command, "admit");
        assert_eq!(a.policy, "trunk:2");
        assert_eq!(a.replay_events, 5000);
        assert!(a.cross_check);
        assert_eq!(a.trace, None);
        // Defaults.
        let d = parse_args(&argv("admit --n 8 --class poisson:rho=0.1")).unwrap();
        assert_eq!(d.policy, "cs");
        assert_eq!(d.replay_events, 1_000_000);
        assert!(!d.cross_check);
    }

    #[test]
    fn rejects_malformed_admit_flags() {
        assert!(parse_args(&argv("admit --n 8 --class poisson:rho=0.1 --policy nope")).is_err());
        assert!(parse_args(&argv(
            "admit --n 8 --class poisson:rho=0.1 --replay-events 0"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "admit --n 8 --class poisson:rho=0.1 --replay-events x"
        ))
        .is_err());
    }

    #[test]
    fn admit_cross_check_needs_complete_sharing() {
        let a = parse_args(&argv(
            "admit --n 6 --class poisson:rho=0.1 --policy trunk:1 --cross-check",
        ))
        .unwrap();
        let err = run_admit(&a).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn admit_replay_cross_check_passes_end_to_end() {
        let a = parse_args(&argv(
            "admit --n 6 --class poisson:rho=0.1 --replay-events 200000 --seed 11 --cross-check",
        ))
        .unwrap();
        run_admit(&a).unwrap();
    }

    #[test]
    fn admit_trace_file_round_trip_and_errors() {
        let dir = std::env::temp_dir();
        let good = dir.join("xbar_cli_trace_good.txt");
        std::fs::write(&good, "# demo trace\na 0\na 0\nd 0\na 0 # inline\n").unwrap();
        let a = parse_args(&argv(&format!(
            "admit --n 6 --class poisson:rho=0.1 --trace {}",
            good.display()
        )))
        .unwrap();
        run_admit(&a).unwrap();

        // A departure with nothing in progress is a usage error carrying
        // the line number.
        let bad = dir.join("xbar_cli_trace_bad.txt");
        std::fs::write(&bad, "d 0\n").unwrap();
        let a = parse_args(&argv(&format!(
            "admit --n 6 --class poisson:rho=0.1 --trace {}",
            bad.display()
        )))
        .unwrap();
        let err = run_admit(&a).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains(":1:"), "{err}");

        // Missing file is a usage error, not a panic.
        let a = parse_args(&argv(
            "admit --n 6 --class poisson:rho=0.1 --trace /nonexistent/trace.txt",
        ))
        .unwrap();
        assert_eq!(run_admit(&a).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn admit_trace_handles_empty_and_partial_and_non_utf8_files() {
        let dir = std::env::temp_dir();

        // An empty file is a valid trace of zero events.
        let empty = dir.join("xbar_cli_trace_empty.txt");
        std::fs::write(&empty, "").unwrap();
        let a = parse_args(&argv(&format!(
            "admit --n 6 --class poisson:rho=0.1 --trace {}",
            empty.display()
        )))
        .unwrap();
        run_admit(&a).unwrap();

        // A partial final line (no trailing newline) is still replayed.
        let partial = dir.join("xbar_cli_trace_partial.txt");
        std::fs::write(&partial, "a 0\na 0").unwrap();
        let a = parse_args(&argv(&format!(
            "admit --n 6 --class poisson:rho=0.1 --trace {}",
            partial.display()
        )))
        .unwrap();
        run_admit(&a).unwrap();

        // CRLF line endings are tolerated.
        let crlf = dir.join("xbar_cli_trace_crlf.txt");
        std::fs::write(&crlf, "a 0\r\nd 0\r\n").unwrap();
        let a = parse_args(&argv(&format!(
            "admit --n 6 --class poisson:rho=0.1 --trace {}",
            crlf.display()
        )))
        .unwrap();
        run_admit(&a).unwrap();

        // A non-UTF-8 byte is a typed usage error naming the line — never
        // a panic, and valid lines before it still parse.
        let binary = dir.join("xbar_cli_trace_binary.txt");
        std::fs::write(&binary, b"a 0\n\xFF\xFE garbage\n").unwrap();
        let a = parse_args(&argv(&format!(
            "admit --n 6 --class poisson:rho=0.1 --trace {}",
            binary.display()
        )))
        .unwrap();
        let err = run_admit(&a).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains(":2:"), "{err}");
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn parses_serve_command() {
        let a = parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir /tmp/xd --file trace.txt \
             --queue-cap 64 --snapshot-interval 512 --max-failures 3 \
             --reanchor-deadline-ms 5 --reprice-batch 256 --sync-every 16 \
             --idle-timeout-ms 100 --kill-after 1000",
        ))
        .unwrap();
        assert_eq!(a.command, "serve");
        assert_eq!(a.data_dir.as_deref(), Some("/tmp/xd"));
        assert_eq!(a.serve_source, Some(ServeSource::File("trace.txt".into())));
        assert_eq!(a.queue_cap, 64);
        assert_eq!(a.snapshot_interval, 512);
        assert_eq!(a.max_failures, 3);
        assert_eq!(a.reanchor_deadline_ms, Some(5));
        assert_eq!(a.reprice_batch, Some(256));
        assert_eq!(a.sync_every, 16);
        assert_eq!(a.idle_timeout_ms, 100);
        assert_eq!(a.kill_after, Some(1000));
        // Tail and socket sources parse too.
        let t = parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --tail t.txt",
        ))
        .unwrap();
        assert_eq!(t.serve_source, Some(ServeSource::Tail("t.txt".into())));
        let s = parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --socket s.sock",
        ))
        .unwrap();
        assert_eq!(s.serve_source, Some(ServeSource::Socket("s.sock".into())));
    }

    #[test]
    fn rejects_malformed_serve_flags() {
        // Missing data dir / source.
        assert!(parse_args(&argv("serve --n 8 --class poisson:rho=0.1 --file t")).is_err());
        assert!(parse_args(&argv("serve --n 8 --class poisson:rho=0.1 --data-dir d")).is_err());
        // Two sources.
        assert!(parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --file a --tail b"
        ))
        .is_err());
        // Bad numbers.
        assert!(parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --file t --kill-after 0"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --file t --max-failures 0"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --file t --queue-cap x"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --file t --reprice-batch 0"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "serve --n 8 --class poisson:rho=0.1 --data-dir d --file t --reprice-batch x"
        ))
        .is_err());
    }

    #[test]
    fn serve_file_source_runs_and_recovers_end_to_end() {
        let base = std::env::temp_dir().join(format!("xbar_cli_serve_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let trace = base.join("trace.txt");
        std::fs::write(&trace, "t0 a 0\nt0 a 0\nt0 d 0\nt1 a 0\n# comment\n").unwrap();
        let data = base.join("data");
        let cmd = format!(
            "serve --n 8 --class poisson:rho=0.1 --data-dir {} --file {}",
            data.display(),
            trace.display()
        );
        let a = parse_args(&argv(&cmd)).unwrap();
        run_serve(&a).unwrap();
        // Run the same trace again against the surviving state: every
        // event deduplicates against the WAL, still exit 0.
        let a = parse_args(&argv(&cmd)).unwrap();
        run_serve(&a).unwrap();
    }

    #[test]
    fn serve_quarantine_maps_to_exit_7() {
        let base = std::env::temp_dir().join(format!("xbar_cli_serve_q_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let trace = base.join("trace.txt");
        // Departures with nothing in flight, past the failure threshold.
        std::fs::write(&trace, "t0 d 0\n".repeat(6)).unwrap();
        let a = parse_args(&argv(&format!(
            "serve --n 8 --class poisson:rho=0.1 --data-dir {} --file {} --max-failures 3",
            base.join("data").display(),
            trace.display()
        )))
        .unwrap();
        let err = run_serve(&a).unwrap_err();
        assert_eq!(err.exit_code(), 7);
        assert!(err.to_string().contains("t0"), "{err}");
    }

    #[test]
    fn serve_metrics_invariant_accepts_balanced_and_rejects_broken_accounting() {
        let reg = xbar_obs::Registry::new();
        reg.counter("serve.offers").add(100);
        reg.counter("serve.admitted").add(80);
        reg.counter("serve.denied.capacity").add(9);
        reg.counter("serve.denied.policy").add(1);
        reg.counter("serve.shed.total").add(10);
        // Coalesced re-anchor accounting: 3 batched completions across 2
        // fleet batches is consistent.
        reg.counter("serve.reanchor.batched").add(3);
        reg.counter("serve.reanchor.batches").add(2);
        assert!(verify_metrics_invariants(&reg.snapshot()).is_ok());

        let broken = xbar_obs::Registry::new();
        broken.counter("serve.offers").add(100);
        broken.counter("serve.admitted").add(80);
        let err = verify_metrics_invariants(&broken.snapshot()).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("serve"));

        // More batches than batched re-anchors is impossible (every batch
        // completes at least one) and must fail the metrics gate.
        let phantom = xbar_obs::Registry::new();
        phantom.counter("serve.reanchor.batched").add(1);
        phantom.counter("serve.reanchor.batches").add(2);
        let err = verify_metrics_invariants(&phantom.snapshot()).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("re-anchor"));
    }

    #[test]
    fn reprice_metrics_invariant_requires_updates_le_batches() {
        let ok = xbar_obs::Registry::new();
        ok.counter("admission.reprice.batches").add(10);
        ok.counter("admission.reprice.updates").add(3);
        assert!(verify_metrics_invariants(&ok.snapshot()).is_ok());
        // Zero batches with zero updates (repricing off) is fine too.
        let off = xbar_obs::Registry::new();
        off.counter("admission.reprice.batches").add(0);
        assert!(verify_metrics_invariants(&off.snapshot()).is_ok());
        // A threshold can only change inside a repricing pass: more
        // updates than batches must fail the metrics gate (exit 6).
        let broken = xbar_obs::Registry::new();
        broken.counter("admission.reprice.batches").add(2);
        broken.counter("admission.reprice.updates").add(3);
        let err = verify_metrics_invariants(&broken.snapshot()).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("repricing"), "{err}");
    }

    #[test]
    fn admit_reprice_batch_runs_end_to_end() {
        let a = parse_args(&argv(
            "admit --n 6 --class poisson:rho=0.25,w=1 --class poisson:rho=0.5,w=0.01 \
             --policy shadow:reserve=2 --replay-events 2000 --reprice-batch 100",
        ))
        .unwrap();
        assert_eq!(a.reprice_batch, Some(100));
        run_admit(&a).unwrap();
    }

    #[test]
    fn parses_fleet_command() {
        let a = parse_args(&argv("fleet --models specs.txt --simd fast --threads 4")).unwrap();
        assert_eq!(a.command, "fleet");
        assert_eq!(a.models_path.as_deref(), Some("specs.txt"));
        assert_eq!(a.simd_mode, Some(xbar_core::KernelMode::Fast));
        assert_eq!(a.threads, 4);
        // --models is mandatory; the per-command geometry flags are not
        // meaningful and must be rejected rather than silently ignored.
        assert!(parse_args(&argv("fleet")).is_err());
        assert!(parse_args(&argv("fleet --models m.txt --n 8")).is_err());
        assert!(parse_args(&argv("fleet --models m.txt --class poisson:rho=0.1")).is_err());
        assert!(parse_args(&argv("fleet --models m.txt --simd turbo")).is_err());
    }

    #[test]
    fn parses_fleet_model_specs_and_rejects_garbage() {
        let text = "# a comment\n\
                    8 poisson:rho=0.01\n\
                    \n\
                    6x10 bpp:alpha=0.005,beta=0.002 poisson:rho=0.02  # trailing comment\n";
        let models = parse_fleet_models(text).unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].dims(), Dims::square(8));
        assert_eq!(models[0].num_classes(), 1);
        assert_eq!(models[1].dims(), Dims::new(6, 10));
        assert_eq!(models[1].num_classes(), 2);
        for bad in [
            "",
            "# only comments\n",
            "8\n",                   // no class specs
            "8 nope:rho=1\n",        // bad class kind
            "8x poisson:rho=0.1\n",  // malformed dims
            "0x4 poisson:rho=0.1\n", // invalid model (zero inputs)
        ] {
            assert!(parse_fleet_models(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn fleet_results_match_independent_solves() {
        let dir = std::env::temp_dir().join(format!("xbar_cli_fleet_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.txt");
        let text = "6 poisson:rho=0.02\n\
                    8 bpp:alpha=0.004,beta=0.002\n\
                    6 poisson:rho=0.02\n"; // duplicate of line 1
        std::fs::write(&path, text).unwrap();
        let models = parse_fleet_models(text).unwrap();
        let results = xbar_core::solve_fleet(&models, Algorithm::Auto);
        assert_eq!(results.len(), 3);
        for (model, res) in models.iter().zip(&results) {
            let fleet_sol = res.as_ref().unwrap();
            let solo = solve(model, Algorithm::Auto).unwrap();
            for r in 0..model.num_classes() {
                assert_eq!(
                    fleet_sol.blocking(r).to_bits(),
                    solo.blocking(r).to_bits(),
                    "fleet and independent solves must agree bitwise"
                );
            }
        }
        // And the command end-to-end: exit clean on a good file.
        let a = parse_args(&argv(&format!("fleet --models {}", path.display()))).unwrap();
        run_fleet(&a).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_sweep_command() {
        let a = parse_args(&argv(
            "sweep --n 12 --class poisson:rho=0.01 --class bpp:alpha=0.005,beta=0.002 \
             --sweep-class 1 --alpha 0.001:0.01:10",
        ))
        .unwrap();
        assert_eq!(a.command, "sweep");
        assert_eq!(a.sweep_class, 1);
        assert_eq!(a.alpha_range, Some((0.001, 0.01, 10)));
        // Defaults to class 0.
        let d = parse_args(&argv(
            "sweep --n 8 --class poisson:rho=0.01 --alpha 0:0.1:5",
        ))
        .unwrap();
        assert_eq!(d.sweep_class, 0);
    }

    #[test]
    fn rejects_malformed_sweep_flags() {
        // Missing --alpha.
        assert!(parse_args(&argv("sweep --n 8 --class poisson:rho=0.01")).is_err());
        // Bad grid specs.
        assert!(parse_args(&argv("sweep --n 8 --class poisson:rho=0.01 --alpha 1:2")).is_err());
        assert!(parse_args(&argv("sweep --n 8 --class poisson:rho=0.01 --alpha 1:2:0")).is_err());
        assert!(parse_args(&argv("sweep --n 8 --class poisson:rho=0.01 --alpha x:2:3")).is_err());
        assert!(parse_args(&argv(
            "sweep --n 8 --class poisson:rho=0.01 --alpha 1:inf:3"
        ))
        .is_err());
        // Sweep class out of range.
        assert!(parse_args(&argv(
            "sweep --n 8 --class poisson:rho=0.01 --sweep-class 1 --alpha 0:1:3"
        ))
        .is_err());
    }

    #[test]
    fn sweep_points_match_fresh_solves() {
        let a = parse_args(&argv(
            "sweep --n 10 --class poisson:rho=0.02 --class bpp:alpha=0.01,beta=0.004 \
             --sweep-class 1 --alpha 0.002:0.02:7",
        ))
        .unwrap();
        assert!(run_sweep(&a).is_ok());
        // Cross-check one interior grid point against a fresh full solve.
        let model = build_model(&a).unwrap();
        let sweep = SweepSolver::new(&model, Algorithm::Auto).unwrap();
        let alpha = 0.002 + (0.02 - 0.002) * 3.0 / 6.0;
        let point = sweep.solve_with_rho(1, alpha).unwrap();
        let full = solve(&model.with_rho(1, alpha).unwrap(), Algorithm::Auto).unwrap();
        assert!((point.blocking(1) - full.blocking(1)).abs() < 1e-9);
    }

    #[test]
    fn metrics_invariant_accepts_balanced_and_rejects_broken_accounting() {
        // Balanced: offers = admitted + capacity + fault.
        let reg = xbar_obs::Registry::new();
        reg.counter("sim.offers").add(100);
        reg.counter("sim.admitted").add(90);
        reg.counter("sim.blocked.capacity").add(7);
        reg.counter("sim.blocked.fault").add(3);
        assert!(verify_metrics_invariants(&reg.snapshot()).is_ok());

        // No sim counters at all (solve-only run): trivially fine.
        assert!(verify_metrics_invariants(&xbar_obs::Registry::new().snapshot()).is_ok());

        // Broken accounting maps to the metrics exit code (6).
        let broken = xbar_obs::Registry::new();
        broken.counter("sim.offers").add(100);
        broken.counter("sim.admitted").add(90);
        let err = verify_metrics_invariants(&broken.snapshot()).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("invariant"));

        // Admission accounting: balanced passes, broken maps to exit 6.
        let adm = xbar_obs::Registry::new();
        adm.counter("admission.offers").add(50);
        adm.counter("admission.admitted").add(40);
        adm.counter("admission.denied.capacity").add(6);
        adm.counter("admission.denied.policy").add(4);
        assert!(verify_metrics_invariants(&adm.snapshot()).is_ok());
        let broken = xbar_obs::Registry::new();
        broken.counter("admission.offers").add(50);
        broken.counter("admission.admitted").add(49);
        let err = verify_metrics_invariants(&broken.snapshot()).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("admission"));
    }

    #[test]
    fn parses_plan_command() {
        let a = parse_args(&argv(
            "plan --n 8 --class poisson:rho=0.02 --class bpp:alpha=0.008,beta=0.004,w=2 \
             --geo 6 --geo 8x8 --rho-axis 0:0.002:0.08:7 --slo 1:0.4 \
             --strategy gradient --objective w",
        ))
        .unwrap();
        assert_eq!(a.command, "plan");
        assert_eq!(a.geometries, vec![Dims::new(6, 6), Dims::new(8, 8)]);
        assert_eq!(
            a.rho_axes,
            vec![RhoAxis {
                class: 0,
                lo: 0.002,
                hi: 0.08,
                steps: 7
            }]
        );
        assert_eq!(
            a.slos,
            vec![Slo {
                class: 1,
                max_blocking: 0.4
            }]
        );
        assert_eq!(a.plan_strategy, "gradient");
        // Defaults.
        let d = parse_args(&argv("plan --n 8 --class poisson:rho=0.02")).unwrap();
        assert_eq!(d.plan_strategy, "exhaustive");
        assert!(d.geometries.is_empty() && d.rho_axes.is_empty() && d.slos.is_empty());
    }

    #[test]
    fn rejects_malformed_plan_flags() {
        let base = "plan --n 8 --class poisson:rho=0.02";
        for bad in [
            "--geo 0",
            "--geo 4x0",
            "--geo x",
            "--rho-axis 0:0.01:0.1",
            "--rho-axis 0:0:0.1:5",
            "--rho-axis 0:0.1:0.01:5",
            "--rho-axis 0:0.01:0.1:0",
            "--rho-axis 0:a:0.1:5",
            "--slo 0",
            "--slo 0:1.5",
            "--slo 0:-0.1",
            "--slo x:0.5",
            "--strategy newton",
            "--objective throughput",
            // Class indices out of range for a 1-class model.
            "--rho-axis 1:0.01:0.1:5",
            "--slo 1:0.5",
        ] {
            let cmd = format!("{base} {bad}");
            assert!(parse_args(&argv(&cmd)).is_err(), "accepted: {cmd}");
        }
    }

    #[test]
    fn plan_end_to_end_writes_frontier_and_contour_csvs() {
        let base = std::env::temp_dir().join(format!("xbar_cli_plan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let frontier = base.join("frontier.csv");
        let contour = base.join("contour.csv");
        let cmd = format!(
            "plan --n 8 --class poisson:rho=0.02 --class bpp:alpha=0.008,beta=0.004,w=2 \
             --geo 6 --geo 8 --rho-axis 0:0.002:0.08:7 --slo 1:0.4 \
             --frontier-csv {} --contour-csv {}",
            frontier.display(),
            contour.display()
        );
        let a = parse_args(&argv(&cmd)).unwrap();
        run_plan(&a).unwrap();
        let f = std::fs::read_to_string(&frontier).unwrap();
        assert!(f.starts_with("index,n1,n2,rho,objective,worst_blocking,optimal\n"));
        assert_eq!(
            f.lines().filter(|l| l.ends_with(",true")).count(),
            1,
            "exactly one optimal frontier row:\n{f}"
        );
        let c = std::fs::read_to_string(&contour).unwrap();
        assert!(c.starts_with("index,n1,n2,rho,objective,worst_blocking,feasible\n"));
        // The contour covers every evaluated cell; pruning keeps it below
        // the full 2 * 7 grid but the feasible band must be present.
        assert!(c.lines().count() > 2);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn plan_infeasible_slo_maps_to_exit_8() {
        // Minimum achievable class-1 blocking over this space is ~0.14;
        // an SLO of 0.01 is unsatisfiable but perfectly solvable.
        let a = parse_args(&argv(
            "plan --n 8 --class poisson:rho=0.02 --class bpp:alpha=0.008,beta=0.004,w=2 \
             --geo 6 --geo 8 --rho-axis 0:0.002:0.08:7 --slo 1:0.01",
        ))
        .unwrap();
        let err = run_plan(&a).unwrap_err();
        assert_eq!(err.exit_code(), 8, "got {err:?}");
        // The diagnostic names the closest miss so the operator can see
        // how far off the requirement is.
        assert!(err.to_string().contains("closest"), "{err}");
    }

    #[test]
    fn plan_gradient_strategy_runs_and_respects_the_slo() {
        let a = parse_args(&argv(
            "plan --n 8 --class poisson:rho=0.02 --class bpp:alpha=0.008,beta=0.004,w=2 \
             --rho-axis 0:0.002:0.08:7 --slo 1:0.4 --strategy gradient",
        ))
        .unwrap();
        assert!(run_plan(&a).is_ok());
    }

    #[test]
    fn plan_metrics_invariants_accept_balanced_and_reject_broken_accounting() {
        // Balanced ledger: candidates = evaluated + pruned, and every
        // evaluation got exactly one SLO verdict.
        let ok = xbar_obs::Registry::new();
        ok.counter("plan.candidates").add(14);
        ok.counter("plan.evaluated").add(10);
        ok.counter("plan.pruned").add(4);
        ok.counter("plan.feasible").add(7);
        ok.counter("plan.infeasible").add(3);
        assert!(verify_metrics_invariants(&ok.snapshot()).is_ok());

        // A candidate that was neither evaluated nor pruned.
        let lost = xbar_obs::Registry::new();
        lost.counter("plan.candidates").add(14);
        lost.counter("plan.evaluated").add(10);
        lost.counter("plan.pruned").add(3);
        let err = verify_metrics_invariants(&lost.snapshot()).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("plan accounting"));

        // An evaluation with no SLO verdict.
        let verdictless = xbar_obs::Registry::new();
        verdictless.counter("plan.candidates").add(10);
        verdictless.counter("plan.evaluated").add(10);
        verdictless.counter("plan.feasible").add(9);
        let err = verify_metrics_invariants(&verdictless.snapshot()).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("SLO-verdict"));
    }

    #[test]
    fn plan_run_emits_counters_that_satisfy_the_invariants() {
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _scope = xbar_obs::scope(&reg);
        let a = parse_args(&argv(
            "plan --n 8 --class poisson:rho=0.02 --class bpp:alpha=0.008,beta=0.004,w=2 \
             --geo 6 --geo 8 --rho-axis 0:0.002:0.08:7 --slo 1:0.4",
        ))
        .unwrap();
        run_plan(&a).unwrap();
        let snap = reg.snapshot();
        assert!(snap.counter("plan.candidates").unwrap_or(0) > 0);
        assert!(snap.counter("plan.pruned").unwrap_or(0) > 0);
        assert!(verify_metrics_invariants(&snap).is_ok());
    }
}

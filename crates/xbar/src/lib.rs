#![warn(missing_docs)]

//! `xbar` — performance analysis of asynchronous multi-rate crossbar
//! switches with bursty (BPP) traffic.
//!
//! This facade crate re-exports the whole public API of the workspace
//! reproducing Stirpe & Pinsky, *"Performance Analysis of an Asynchronous
//! Multi-rate Crossbar with Bursty Traffic"* (SIGCOMM 1992):
//!
//! * [`traffic`] — BPP traffic classes (Bernoulli / Poisson / Pascal),
//!   peakedness, fitting, tilde-parameter conversion;
//! * [`analytic`] — the product-form model, Algorithms 1 & 2, all
//!   performance measures and revenue gradients;
//! * [`sim`] — a discrete-event simulator of the same switch with general
//!   service times and hot-spot traffic;
//! * [`baselines`] — Erlang-B, the synchronous slotted crossbar, and an
//!   Omega multistage network for comparison;
//! * [`serve`] — a fault-tolerant multi-tenant admission daemon over the
//!   online engine, with WAL + snapshot durability, supervised restarts,
//!   and load shedding;
//! * [`plan`] — gradient-guided capacity planning: search a design space
//!   of geometries and offered loads for the revenue-maximal design that
//!   honours per-class blocking SLOs;
//! * [`numeric`] — the extended-range floats and special functions
//!   underpinning it all.
//!
//! The most common entry points are lifted to the crate root.
//!
//! ```
//! use xbar::{solve, Algorithm, Dims, Model, TildeClass, Workload};
//!
//! // A 32×32 optical crossbar carrying voice-like smooth traffic and
//! // bursty video at 2 ports per connection.
//! let dims = Dims::square(32);
//! let workload = Workload::from_tilde(
//!     &[
//!         TildeClass::bpp(0.0024, -2.0e-6, 1.0),          // smooth, S=1200
//!         TildeClass::bpp(0.001, 0.0005, 1.0).with_bandwidth(2), // peaky
//!     ],
//!     dims.n2,
//! );
//! let sol = solve(&Model::new(dims, workload).unwrap(), Algorithm::Auto).unwrap();
//! assert!(sol.blocking(1) > sol.blocking(0)); // wide+peaky blocks more
//! ```

pub mod cli;

pub use xbar_baselines as baselines;
pub use xbar_core as analytic;
pub use xbar_numeric as numeric;
pub use xbar_obs as obs;
pub use xbar_plan as plan;
pub use xbar_serve as serve;
pub use xbar_sim as sim;
pub use xbar_traffic as traffic;

pub use xbar_core::{
    solve, solve_resilient, Algorithm, Dims, Model, ModelError, ResilientConfig, ResilientSolution,
    Solution, SolveReport, SwitchMeasures,
};
pub use xbar_sim::{
    run_replications, run_sim_replications, run_sim_until_ci, run_until_ci, CiTarget, CrossbarSim,
    FaultConfig, RepConfig, RunConfig, ServiceDist, SimConfig, SimError, SimReplications,
};
pub use xbar_traffic::{Burstiness, TildeClass, TrafficClass, Workload};

//! Property tests for the CLI front-end: whatever argument vector or class
//! spec the shell throws at it, the parser must return a value — `Ok` or a
//! typed `Err` — and never panic. This is the contract that makes the
//! binary's exit codes trustworthy (a panic would bypass them).

use proptest::prelude::*;

use xbar::cli::{parse_args, parse_class};

/// Tokens mixing plausible flags, plausible values, and garbage.
fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("solve".to_string()),
        Just("sim".to_string()),
        Just("--n".to_string()),
        Just("--n1".to_string()),
        Just("--n2".to_string()),
        Just("--class".to_string()),
        Just("--algorithm".to_string()),
        Just("--resilient".to_string()),
        Just("--cross-check-tol".to_string()),
        Just("--duration".to_string()),
        Just("--warmup".to_string()),
        Just("--seed".to_string()),
        Just("--port-mtbf".to_string()),
        Just("--port-mttr".to_string()),
        Just("--fail-inputs".to_string()),
        Just("--fail-outputs".to_string()),
        Just("poisson:rho=0.1".to_string()),
        Just("bpp:alpha=0.1,beta=0.05".to_string()),
        Just("alg2-mva".to_string()),
        Just("auto".to_string()),
        Just("nan".to_string()),
        Just("inf".to_string()),
        Just("-inf".to_string()),
        Just("-7".to_string()),
        Just("1e308".to_string()),
        Just("1e-308".to_string()),
        Just("18446744073709551616".to_string()), // u64::MAX + 1
        Just("0".to_string()),
        Just("".to_string()),
        Just("--bogus".to_string()),
        Just("💥".to_string()),
        (0.0f64..1e6).prop_map(|x| x.to_string()),
        (0u32..5000).prop_map(|x| x.to_string()),
    ]
}

/// Random class-spec-shaped strings: a kind-ish prefix, then noisy
/// key=value fragments.
fn arb_spec() -> impl Strategy<Value = String> {
    let kind = prop_oneof![
        Just("poisson".to_string()),
        Just("bpp".to_string()),
        Just("erlang".to_string()),
        Just("".to_string()),
    ];
    let key = prop_oneof![
        Just("rho".to_string()),
        Just("alpha".to_string()),
        Just("beta".to_string()),
        Just("mu".to_string()),
        Just("a".to_string()),
        Just("w".to_string()),
        Just("tilde".to_string()),
        Just("bogus".to_string()),
        Just("=".to_string()),
        Just("".to_string()),
    ];
    let value = prop_oneof![
        (0.0f64..100.0).prop_map(|x| x.to_string()),
        Just("nan".to_string()),
        Just("inf".to_string()),
        Just("-1".to_string()),
        Just("1.5".to_string()),
        Just("x".to_string()),
        Just("".to_string()),
    ];
    let part = (key, value, prop::bool::ANY).prop_map(
        |(k, v, flag)| {
            if flag {
                k
            } else {
                format!("{k}={v}")
            }
        },
    );
    let sep = prop_oneof![Just(":".to_string()), Just("".to_string())];
    (kind, sep, prop::collection::vec(part, 0..4))
        .prop_map(|(kind, sep, parts)| format!("{kind}{sep}{}", parts.join(",")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_args_never_panics(tokens in prop::collection::vec(arb_token(), 0..12)) {
        // The property is total absence of panics; both outcomes are legal.
        let _ = parse_args(&tokens);
    }

    #[test]
    fn parse_class_never_panics(spec in arb_spec()) {
        let result = parse_class(&spec);
        // Structurally impossible specs must actually be rejected.
        if !spec.contains(':') {
            prop_assert!(result.is_err(), "accepted '{spec}'");
        }
    }

    #[test]
    fn accepted_args_are_internally_consistent(
        tokens in prop::collection::vec(arb_token(), 0..12),
    ) {
        if let Ok(args) = parse_args(&tokens) {
            prop_assert!(args.command == "solve" || args.command == "sim");
            prop_assert!(!args.classes.is_empty());
            prop_assert!(args.duration.is_finite() && args.duration > 0.0);
            prop_assert!(args.warmup.is_finite() && args.warmup >= 0.0);
            prop_assert!(!args.port_mtbf.is_nan() && args.port_mtbf >= 0.0);
            prop_assert!(!args.port_mttr.is_nan() && args.port_mttr >= 0.0);
            if let Some(tol) = args.cross_check_tol {
                prop_assert!(tol.is_finite() && tol > 0.0);
            }
        }
    }
}

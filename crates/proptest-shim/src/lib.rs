#![warn(missing_docs)]

//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored. This shim keeps the same *source* interface —
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter_map`, range and tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::num::f64` float-class strategies, and the
//! `proptest!` / `prop_assert!` / `prop_assume!` / `prop_oneof!` macros —
//! but with two simplifications:
//!
//! 1. **No shrinking.** A failing case reports the generated input
//!    verbatim instead of a minimised one.
//! 2. **Deterministic seeding.** Each test derives its RNG seed from the
//!    test name, so CI failures reproduce locally without a persistence
//!    file.

use rand::rngs::StdRng;

/// RNG handed to strategies during generation.
pub type TestRng = StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `new_value` draws a fresh
    /// sample directly (no shrinking).
    pub trait Strategy {
        /// Type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a second strategy from each generated value and sample it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values `f` maps to `Some`, resampling otherwise.
        /// `reason` is reported if the filter rejects too often.
        fn prop_filter_map<U, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Keep only values satisfying `f`, resampling otherwise.
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
                self.new_value(rng)
            }))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// How many consecutive filter rejections before a generator gives up.
    const MAX_LOCAL_REJECTS: u32 = 65_536;

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            for _ in 0..MAX_LOCAL_REJECTS {
                if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected {MAX_LOCAL_REJECTS} consecutive inputs: {}",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_LOCAL_REJECTS {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected {MAX_LOCAL_REJECTS} consecutive inputs: {}",
                self.reason
            );
        }
    }

    /// A type-erased strategy (`Strategy::boxed`). Cheap to clone.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among several strategies of one value type
    /// (backs the `prop_oneof!` macro).
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; each is picked with equal probability.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical `bool` strategy, `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod num {
    //! Numeric strategies beyond plain ranges.

    pub mod f64 {
        //! Strategies over `f64` bit-pattern classes, combined with `|`.

        use crate::strategy::Strategy;
        use crate::TestRng;
        use core::ops::BitOr;
        use rand::Rng;

        /// A set of `f64` value classes to sample from uniformly
        /// (by class, then by bit pattern within the class).
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct FloatTypes(u32);

        /// Normal (full-exponent-range) finite values of either sign.
        pub const NORMAL: FloatTypes = FloatTypes(1);
        /// Positive and negative zero.
        pub const ZERO: FloatTypes = FloatTypes(1 << 1);
        /// Subnormal values of either sign.
        pub const SUBNORMAL: FloatTypes = FloatTypes(1 << 2);
        /// Positive and negative infinity.
        pub const INFINITE: FloatTypes = FloatTypes(1 << 3);
        /// Quiet NaNs.
        pub const QUIET_NAN: FloatTypes = FloatTypes(1 << 4);

        impl BitOr for FloatTypes {
            type Output = FloatTypes;
            fn bitor(self, rhs: FloatTypes) -> FloatTypes {
                FloatTypes(self.0 | rhs.0)
            }
        }

        impl Strategy for FloatTypes {
            type Value = f64;
            fn new_value(&self, rng: &mut TestRng) -> f64 {
                let classes: Vec<FloatTypes> = [NORMAL, ZERO, SUBNORMAL, INFINITE, QUIET_NAN]
                    .into_iter()
                    .filter(|c| self.0 & c.0 != 0)
                    .collect();
                assert!(!classes.is_empty(), "empty FloatTypes strategy");
                let class = classes[rng.gen_range(0..classes.len())];
                let sign = (rng.gen::<bool>() as u64) << 63;
                let mantissa = rng.gen::<u64>() & ((1u64 << 52) - 1);
                let bits = match class {
                    NORMAL => {
                        // Biased exponent in [1, 2046]: every finite normal.
                        let exp = rng.gen_range(1u64..=2046);
                        sign | (exp << 52) | mantissa
                    }
                    ZERO => sign,
                    SUBNORMAL => sign | mantissa.max(1),
                    INFINITE => sign | (2047u64 << 52),
                    _ => sign | (2047u64 << 52) | (1u64 << 51) | mantissa,
                };
                f64::from_bits(bits)
            }
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Admissible element counts for [`vec`]: a fixed count, `a..b`, or
    /// `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` samples.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, rejection/failure plumbing, and the
    //! driver loop the `proptest!` macro expands to.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::SeedableRng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// Config differing from default only in the case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream's default; property bodies here are cheap.
            Config { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// Input did not meet an assumption; retried without counting.
        Reject(String),
        /// The property is false for this input.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (see `prop_assume!`).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// A failure (see `prop_assert!`).
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Result type property bodies are wrapped into.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a: deterministic across runs/platforms so failures reproduce.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Run `test` against `config.cases` inputs drawn from `strategy`,
    /// panicking (with the offending input) on the first failure.
    pub fn run<S, F>(config: &Config, name: &str, strategy: S, test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::seed_from_u64(seed_from_name(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(64).max(4096);
        while passed < config.cases {
            let value = strategy.new_value(&mut rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "{name}: gave up after {rejected} prop_assume! \
                             rejections ({passed}/{} cases passed)",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "{name}: property failed after {passed} passing case(s)\n\
                         input: {repr}\ncause: {reason}"
                    );
                }
            }
        }
    }
}

/// Everything a property-test module needs, matching upstream's layout
/// (including the `prop` pseudo-crate alias).
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias matching upstream's `prelude::prop` module.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fail the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Reject the current input (retried without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same two forms as upstream: with a leading
/// `#![proptest_config(...)]` and without.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    ($($strategy,)+),
                    |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 5u32..10, m in 3u64..=4, x in -1.5f64..2.5) {
            prop_assert!((5..10).contains(&n));
            prop_assert!(m == 3 || m == 4);
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn map_and_filter_compose(n in small_even().prop_filter("nonzero", |&n| n != 0)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }

        #[test]
        fn flat_map_threads_dependencies(
            (len, v) in (1usize..5).prop_flat_map(|len| {
                prop::collection::vec(0u8..=255, len).prop_map(move |v| (len, v))
            })
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn oneof_and_bool(x in prop_oneof![Just(1u8), Just(2u8)], b in prop::bool::ANY) {
            prop_assert!(x == 1 || x == 2);
            if b {
                prop_assert!(b);
            } else {
                prop_assert!(!b);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }

        #[test]
        fn float_classes_generate_the_right_kinds(x in
            prop::num::f64::NORMAL | prop::num::f64::ZERO | prop::num::f64::SUBNORMAL)
        {
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_input() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(8),
            "demo",
            (0u32..10,),
            |(n,)| -> TestCaseResult {
                prop_assert!(n > 100, "n = {n} is not > 100");
                Ok(())
            },
        );
    }

    #[test]
    fn deterministic_given_name() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = (0u64..u64::MAX,);
        let mut r1 = crate::TestRng::seed_from_u64(42);
        let mut r2 = crate::TestRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
        }
    }
}
